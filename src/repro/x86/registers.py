"""Register numbering, flag bits, and the P4 system-register catalogue.

The system-register catalogue drives the register-injection campaign:
the paper targets "system registers that assist in initializing the
processor and controlling system operations" — the system bits of
EFLAGS, the control registers, debug registers, the stack pointer, the
FS/GS segment registers, and the memory-management registers (GDTR,
IDTR, LDTR, TR).  Out of roughly 20 targets only about 7 ever produce a
crash in the paper's experiments; the rest absorb bit flips silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

# General-purpose register numbers (IA-32 encoding order).
EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI = range(8)

GPR_NAMES = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")
GPR8_NAMES = ("al", "cl", "dl", "bl", "ah", "ch", "dh", "bh")
GPR16_NAMES = ("ax", "cx", "dx", "bx", "sp", "bp", "si", "di")

# Segment register numbers (IA-32 sreg encoding).
SEG_ES, SEG_CS, SEG_SS, SEG_DS, SEG_FS, SEG_GS = range(6)
SEGMENT_NAMES = ("es", "cs", "ss", "ds", "fs", "gs")

# EFLAGS bits.
FLAG_CF = 0x0001
FLAG_PF = 0x0004
FLAG_AF = 0x0010
FLAG_ZF = 0x0040
FLAG_SF = 0x0080
FLAG_TF = 0x0100
FLAG_IF = 0x0200
FLAG_DF = 0x0400
FLAG_OF = 0x0800
FLAG_IOPL = 0x3000
FLAG_NT = 0x4000       # nested task -- the paper's Invalid TSS trigger
FLAG_AC = 0x40000

#: EFLAGS bits with system (not arithmetic) meaning; register-injection
#: campaigns flip only these, per the paper ("system flags only").
SYSTEM_FLAG_BITS = (8, 9, 10, 12, 13, 14, 18)   # TF IF DF IOPL0 IOPL1 NT AC

# CR0 bits.
CR0_PE = 0x00000001     # protected mode enable
CR0_MP = 0x00000002
CR0_EM = 0x00000004
CR0_TS = 0x00000008
CR0_NE = 0x00000020
CR0_WP = 0x00010000     # write-protect kernel text
CR0_AM = 0x00040000
CR0_NW = 0x20000000
CR0_CD = 0x40000000
CR0_PG = 0x80000000     # paging enable

#: Selectors our flat GDT model accepts.  Anything else loaded into a
#: segment register raises #GP at load time (paper Section 5.2: FS/GS
#: corruption surfaces as General Protection).
VALID_SELECTORS = frozenset({
    0x00,               # null selector is loadable into FS/GS
    0x10, 0x18,         # kernel code / kernel data+stack
    0x23, 0x2B,         # user code / user data
    0x33, 0x3B,         # per-task TLS-style FS / GS selectors
})


@dataclass(frozen=True)
class SystemRegister:
    """One injectable system register.

    ``attr`` names the attribute on :class:`repro.x86.cpu.X86CPU` holding
    the value; ``bits`` is the architectural width the injector may flip
    within.
    """

    name: str
    attr: str
    bits: int
    description: str = ""


#: The P4 register-injection target list (~20 registers, as in the
#: paper).  The attribute names must exist on ``X86CPU``.
P4_SYSTEM_REGISTERS: Tuple[SystemRegister, ...] = (
    SystemRegister("EFLAGS", "eflags", 32, "system flags (NT, IF, ...)"),
    SystemRegister("CR0", "cr0", 32, "operating mode control"),
    SystemRegister("CR2", "cr2", 32, "page-fault linear address"),
    SystemRegister("CR3", "cr3", 32, "page directory base"),
    SystemRegister("CR4", "cr4", 32, "architecture extensions"),
    SystemRegister("DR0", "dr0", 32, "debug address register 0"),
    SystemRegister("DR1", "dr1", 32, "debug address register 1"),
    SystemRegister("DR2", "dr2", 32, "debug address register 2"),
    SystemRegister("DR3", "dr3", 32, "debug address register 3"),
    SystemRegister("DR6", "dr6", 32, "debug status"),
    SystemRegister("DR7", "dr7", 32, "debug control"),
    SystemRegister("ESP", "esp_alias", 32, "kernel stack pointer"),
    SystemRegister("EIP", "eip", 32, "instruction pointer"),
    SystemRegister("FS", "fs", 16, "segment register (per-task state)"),
    SystemRegister("GS", "gs", 16, "segment register (per-task state)"),
    SystemRegister("GDTR_BASE", "gdtr_base", 32, "GDT base address"),
    SystemRegister("GDTR_LIMIT", "gdtr_limit", 16, "GDT limit"),
    SystemRegister("IDTR_BASE", "idtr_base", 32, "IDT base address"),
    SystemRegister("IDTR_LIMIT", "idtr_limit", 16, "IDT limit"),
    SystemRegister("LDTR", "ldtr", 16, "local descriptor table selector"),
    SystemRegister("TR", "tr", 16, "task register (TSS selector)"),
)
