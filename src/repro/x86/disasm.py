"""AT&T-style disassembler for the P4-like core.

Produces output shaped like the paper's figures::

    c013ec65: 8d 65 f4    lea  -0xc(%ebp),%esp
    c013ec68: 5b          pop  %ebx

Used by crash dumps, the case-study examples, and round-trip tests
against the assembler.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.isa.bits import to_signed
from repro.x86 import decoder
from repro.x86.insn import Instr
from repro.x86.registers import (
    GPR8_NAMES, GPR16_NAMES, GPR_NAMES, SEGMENT_NAMES, SEG_DS,
)
from repro.x86.decoder import (
    ALU_NAMES,
    exec_alu_a_imm, exec_alu_r_rm, exec_alu_rm_r, exec_bound,
    exec_call_rel, exec_dec_r, exec_grp1_rm_imm, exec_grp2, exec_grp3,
    exec_grp5, exec_imul_r_rm, exec_imul_rmi, exec_inc_r, exec_int,
    exec_jcc,
    exec_jmp_rel, exec_lea, exec_moffs_load, exec_moffs_store,
    exec_mov_cr, exec_mov_r_imm, exec_mov_r_rm, exec_mov_rm_imm,
    exec_mov_rm_r, exec_mov_rm_sreg, exec_mov_sreg_rm, exec_movs,
    exec_movsx, exec_movzx, exec_pop_r, exec_pop_rm, exec_push_imm,
    exec_push_r, exec_ret, exec_stos, exec_test_a_imm, exec_test_rm_r,
    exec_xchg_eax_r, exec_xchg_r_rm,
)

_GRP2_NAMES = ("rol", "ror", "rcl", "rcr", "shl", "shr", "sal", "sar")
_GRP3_NAMES = ("test", "test", "not", "neg", "mul", "imul", "div", "idiv")
_GRP5_NAMES = ("inc", "dec", "call", "callf", "jmp", "jmpf", "push", "(bad)")


def _reg_name(reg: int, width: int) -> str:
    if width == 1:
        return "%" + GPR8_NAMES[reg]
    if width == 2:
        return "%" + GPR16_NAMES[reg]
    return "%" + GPR_NAMES[reg]


def _hex(value: int) -> str:
    return f"0x{value & 0xFFFFFFFF:x}"


def _disp_str(disp: int) -> str:
    signed = to_signed(disp, 32)
    if signed == 0:
        return ""
    if signed < 0:
        if -signed > 0x00800000:
            # large "negative" displacements are kernel addresses;
            # render unsigned like objdump (0xc0437ae0(%edx))
            return f"0x{disp & 0xFFFFFFFF:x}"
        return f"-0x{-signed:x}"
    return f"0x{signed:x}"


def _mem_str(i: Instr) -> str:
    prefix = ""
    if i.seg != SEG_DS:
        prefix = f"%{SEGMENT_NAMES[i.seg]}:"
    parts = ""
    if i.base >= 0 or i.index >= 0:
        base = "%" + GPR_NAMES[i.base] if i.base >= 0 else ""
        if i.index >= 0:
            parts = f"({base},%{GPR_NAMES[i.index]},{i.scale})"
        else:
            parts = f"({base})"
        return f"{prefix}{_disp_str(i.disp)}{parts}"
    return f"{prefix}{_hex(i.disp)}"


def _rm_str(i: Instr) -> str:
    if i.rm_reg >= 0:
        return _reg_name(i.rm_reg, i.width)
    return _mem_str(i)


def format_instr(i: Instr, addr: int = 0) -> str:
    """Render a decoded instruction in AT&T syntax."""
    fn = i.execute
    if fn is exec_alu_rm_r:
        return f"{ALU_NAMES[i.op2]} {_reg_name(i.reg, i.width)},{_rm_str(i)}"
    if fn is exec_alu_r_rm:
        return f"{ALU_NAMES[i.op2]} {_rm_str(i)},{_reg_name(i.reg, i.width)}"
    if fn is exec_alu_a_imm:
        return f"{ALU_NAMES[i.op2]} ${_hex(i.imm)},{_reg_name(0, i.width)}"
    if fn is exec_grp1_rm_imm:
        suffix = "l" if i.width == 4 else ("w" if i.width == 2 else "b")
        return f"{ALU_NAMES[i.op2]}{suffix} ${_hex(i.imm)},{_rm_str(i)}"
    if fn is exec_test_rm_r:
        return f"test {_reg_name(i.reg, i.width)},{_rm_str(i)}"
    if fn is exec_test_a_imm:
        return f"test ${_hex(i.imm)},{_reg_name(0, i.width)}"
    if fn is exec_mov_rm_r:
        return f"mov {_reg_name(i.reg, i.width)},{_rm_str(i)}"
    if fn is exec_mov_r_rm:
        return f"mov {_rm_str(i)},{_reg_name(i.reg, i.width)}"
    if fn is exec_mov_r_imm:
        return f"mov ${_hex(i.imm)},{_reg_name(i.reg, i.width)}"
    if fn is exec_mov_rm_imm:
        suffix = "l" if i.width == 4 else ("w" if i.width == 2 else "b")
        return f"mov{suffix} ${_hex(i.imm)},{_rm_str(i)}"
    if fn is exec_movzx:
        return f"movzx {_mem_or_reg(i, i.op2)},{_reg_name(i.reg, 4)}"
    if fn is exec_movsx:
        return f"movsx {_mem_or_reg(i, i.op2)},{_reg_name(i.reg, 4)}"
    if fn is exec_lea:
        return f"lea {_mem_str(i)},{_reg_name(i.reg, 4)}"
    if fn is exec_moffs_load:
        return f"mov {_hex(i.disp)},{_reg_name(0, i.width)}"
    if fn is exec_moffs_store:
        return f"mov {_reg_name(0, i.width)},{_hex(i.disp)}"
    if fn is exec_xchg_r_rm:
        return f"xchg {_reg_name(i.reg, i.width)},{_rm_str(i)}"
    if fn is exec_xchg_eax_r:
        return f"xchg %eax,{_reg_name(i.reg, 4)}"
    if fn is exec_push_r:
        return f"push {_reg_name(i.reg, 4)}"
    if fn is exec_pop_r:
        return f"pop {_reg_name(i.reg, 4)}"
    if fn is exec_push_imm:
        return f"push ${_hex(i.imm)}"
    if fn is exec_pop_rm:
        return f"pop {_rm_str(i)}"
    if fn is exec_inc_r:
        return f"inc {_reg_name(i.reg, 4)}"
    if fn is exec_dec_r:
        return f"dec {_reg_name(i.reg, 4)}"
    if fn is exec_grp5:
        name = _GRP5_NAMES[i.op2]
        star = "*" if i.op2 in (2, 4) else ""
        return f"{name} {star}{_rm_str(i)}"
    if fn is exec_grp2:
        name = _GRP2_NAMES[i.op2 & 7]
        kind = i.op2 >> 3
        if kind == 1:
            return f"{name} {_rm_str(i)}"
        if kind == 2:
            return f"{name} %cl,{_rm_str(i)}"
        return f"{name} ${_hex(i.imm)},{_rm_str(i)}"
    if fn is exec_grp3:
        name = _GRP3_NAMES[i.op2]
        if i.op2 in (0, 1):
            return f"test ${_hex(i.imm)},{_rm_str(i)}"
        return f"{name} {_rm_str(i)}"
    if fn is exec_imul_r_rm:
        return f"imul {_rm_str(i)},{_reg_name(i.reg, i.width)}"
    if fn is exec_imul_rmi:
        return (f"imul ${_hex(i.imm)},{_rm_str(i)},"
                f"{_reg_name(i.reg, i.width)}")
    if fn is exec_ret:
        return f"ret ${_hex(i.imm)}" if i.imm else "ret"
    if fn is exec_call_rel:
        return f"call {_hex(addr + i.length + i.imm)}"
    if fn is exec_jmp_rel:
        return f"jmp {_hex(addr + i.length + i.imm)}"
    if fn is exec_jcc:
        return f"{i.mnemonic} {_hex(addr + i.length + i.imm)}"
    if fn is exec_int:
        return f"int ${_hex(i.imm)}"
    if fn is exec_bound:
        return f"bound {_mem_str(i)},{_reg_name(i.reg, 4)}"
    if fn is exec_mov_sreg_rm:
        return f"mov {_rm_str(i)},%{SEGMENT_NAMES[i.reg]}"
    if fn is exec_mov_rm_sreg:
        return f"mov %{SEGMENT_NAMES[i.reg]},{_rm_str(i)}"
    if fn is exec_mov_cr:
        if i.op2 == 0:
            return f"mov %cr{i.reg},{_reg_name(i.rm_reg, 4)}"
        return f"mov {_reg_name(i.rm_reg, 4)},%cr{i.reg}"
    if fn is exec_movs or fn is exec_stos:
        return i.mnemonic
    return i.mnemonic


def _mem_or_reg(i: Instr, width: int) -> str:
    if i.rm_reg >= 0:
        return _reg_name(i.rm_reg, width)
    return _mem_str(i)


def disassemble(raw: bytes, addr: int = 0) -> Tuple[Instr, str]:
    """Decode one instruction from *raw* and return (instr, text)."""
    padded = raw + b"\x00" * decoder.MAX_INSN_LEN
    instr = decoder.decode(padded, addr)
    return instr, format_instr(instr, addr)


def disassemble_range(raw: bytes, addr: int, count: int = 16
                      ) -> List[str]:
    """Disassemble up to *count* instructions, paper-figure style."""
    lines: List[str] = []
    pos = 0
    for _ in range(count):
        if pos >= len(raw):
            break
        instr, text = disassemble(raw[pos:pos + decoder.MAX_INSN_LEN],
                                  addr + pos)
        hexbytes = " ".join(f"{b:02x}"
                            for b in raw[pos:pos + instr.length])
        lines.append(f"{addr + pos:08x}: {hexbytes:<24} {text}")
        pos += instr.length
    return lines
