"""Decoded-instruction representation for the P4-like core.

A decoded :class:`Instr` is immutable in practice and cached per address
(the decode cache is what a trace cache buys the real P4); code writes —
including injected bit flips — invalidate the cache.  The ``execute``
slot holds a module-level function ``fn(cpu, instr)``; keeping operands
in plain int slots keeps the interpreter loop allocation-free.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.x86.registers import SEG_DS


class Instr:
    """One decoded IA-32 instruction (subset)."""

    __slots__ = (
        "mnemonic", "length", "cycles", "execute",
        "reg", "rm_reg", "base", "index", "scale", "disp",
        "imm", "width", "seg", "op2", "raw",
    )

    def __init__(self, mnemonic: str, length: int, cycles: int,
                 execute: Callable[["object", "Instr"], None],
                 reg: int = 0, rm_reg: int = -1, base: int = -1,
                 index: int = -1, scale: int = 1, disp: int = 0,
                 imm: int = 0, width: int = 4, seg: int = SEG_DS,
                 op2: int = 0, raw: Optional[bytes] = None) -> None:
        self.mnemonic = mnemonic
        self.length = length
        self.cycles = cycles
        self.execute = execute
        self.reg = reg
        self.rm_reg = rm_reg
        self.base = base
        self.index = index
        self.scale = scale
        self.disp = disp
        self.imm = imm
        self.width = width
        self.seg = seg
        self.op2 = op2
        self.raw = raw

    @property
    def has_memory_operand(self) -> bool:
        return self.rm_reg < 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Instr({self.mnemonic!r}, len={self.length}, "
                f"reg={self.reg}, rm_reg={self.rm_reg}, base={self.base}, "
                f"disp={self.disp:#x}, imm={self.imm:#x})")
