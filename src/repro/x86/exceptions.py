"""IA-32 exception vectors and the fault type raised by the P4-like core.

The vector set matches what the paper's Table 3 buckets crashes into:
NULL Pointer and Bad Paging both arrive as #PF (vector 14) and are split
by faulting address at classification time; Invalid Instruction is #UD;
General Protection Fault is #GP; Invalid TSS is #TS; Divide Error is
#DE; Bounds Trap is #BR.  Kernel Panic is a *software* outcome (the
kernel detects an inconsistency itself) and therefore has no hardware
vector here.
"""

from __future__ import annotations

import enum

from repro.isa.faults import Fault


class X86Vector(enum.IntEnum):
    """IA-32 interrupt/exception vector numbers (subset)."""

    DIVIDE_ERROR = 0
    DEBUG = 1
    NMI = 2
    BREAKPOINT = 3
    OVERFLOW = 4
    BOUNDS = 5
    INVALID_OPCODE = 6
    DEVICE_NOT_AVAILABLE = 7
    DOUBLE_FAULT = 8
    INVALID_TSS = 10
    SEGMENT_NOT_PRESENT = 11
    STACK_SEGMENT_FAULT = 12
    GENERAL_PROTECTION = 13
    PAGE_FAULT = 14
    ALIGNMENT_CHECK = 17
    MACHINE_CHECK = 18
    SYSCALL = 0x80


class X86Fault(Fault):
    """A hardware exception raised by :class:`repro.x86.cpu.X86CPU`."""

    def __init__(self, vector: X86Vector, address: int | None = None,
                 detail: str = "", error_code: int = 0):
        self.error_code = error_code
        super().__init__(vector=vector, address=address, detail=detail)

    @property
    def x86_vector(self) -> X86Vector:
        return self.vector  # typed alias


#: Vectors whose delivery Linux 2.4 treats as a fatal kernel oops when
#: they occur in kernel mode (everything except the syscall gate and the
#: debug/breakpoint traps used by the injector itself).
FATAL_IN_KERNEL = frozenset({
    X86Vector.DIVIDE_ERROR,
    X86Vector.BOUNDS,
    X86Vector.INVALID_OPCODE,
    X86Vector.DOUBLE_FAULT,
    X86Vector.INVALID_TSS,
    X86Vector.SEGMENT_NOT_PRESENT,
    X86Vector.STACK_SEGMENT_FAULT,
    X86Vector.GENERAL_PROTECTION,
    X86Vector.PAGE_FAULT,
    X86Vector.ALIGNMENT_CHECK,
    X86Vector.MACHINE_CHECK,
    X86Vector.OVERFLOW,
})
