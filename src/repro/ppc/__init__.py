"""G4-like PowerPC (MPC7455) simulator.

This package models the architectural features of the Motorola PowerPC
G4 that the paper holds responsible for its error-sensitivity profile:

* fixed 32-bit instruction encodings with a sparse opcode space, so a
  bit flip usually produces an *undefined* encoding (Illegal
  Instruction) rather than a different valid instruction;
* a large register file (32 GPRs), letting compiled code keep locals in
  callee-saved registers — values live long, so corrupted code output
  may not be consumed for many cycles (long code-error latency);
* word-oriented memory access: the kcc PPC backend reads and writes
  every struct field as a full 32-bit word, so small fields are sparse
  and flips of their unused high bits are masked;
* the PowerPC exception model: DSI ("kernel access of bad area"), ISI,
  Program (illegal instruction), Alignment, Machine Check — the crash
  cause categories of the paper's Table 4;
* a supervisor SPR file of 99 registers of which only a handful (MSR,
  SDR1, SPRG2, HID0, BATs) have behavioural consequences.
"""

from repro.ppc.cpu import PPCCPU
from repro.ppc.exceptions import PPCFault, PPCVector
from repro.ppc.assembler import PPCAssembler
from repro.ppc.disasm import disassemble_word, disassemble_range

__all__ = [
    "PPCCPU", "PPCFault", "PPCVector", "PPCAssembler",
    "disassemble_word", "disassemble_range",
]
