"""PowerPC disassembler producing paper-figure-style listings::

    c008d798: 81 7f 00 28   lwz r11,40(r31)
    c008d79c: 2c 0b 00 00   cmpwi r11,0
"""

from __future__ import annotations

from typing import List, Tuple

from repro.isa.bits import to_signed
from repro.ppc import decoder
from repro.ppc.insn import PPCInstr
from repro.ppc.decoder import (
    exec_add, exec_addi, exec_addic, exec_addis, exec_and, exec_andi_dot,
    exec_b, exec_bc, exec_bcctr, exec_bclr, exec_cmplw, exec_cmplwi,
    exec_cmpw, exec_cmpwi, exec_divw, exec_divwu, exec_illegal,
    exec_lbz, exec_lbzx, exec_lha, exec_lhax, exec_lhz, exec_lhzx,
    exec_lmw, exec_lwz, exec_lwzu, exec_lwzx, exec_mfcr, exec_mfmsr,
    exec_mfspr, exec_mtmsr, exec_mtspr, exec_mulli, exec_mullw,
    exec_nand, exec_neg, exec_nor, exec_or, exec_ori, exec_oris,
    exec_rfi, exec_rlwinm, exec_sc, exec_slw, exec_sraw, exec_srawi,
    exec_srw, exec_stb, exec_stbx, exec_sth, exec_sthx, exec_stmw,
    exec_stw, exec_stwu, exec_stwx, exec_subf, exec_tw, exec_twi,
    exec_xor, exec_xori,
)
from repro.ppc.registers import SPR_CTR, SPR_LR

_DFORM_ARITH = {exec_addi, exec_addis, exec_addic, exec_mulli}
_DFORM_LOGIC = {exec_ori, exec_oris, exec_xori, exec_andi_dot}
_DFORM_MEM = {exec_lwz, exec_lwzu, exec_lbz, exec_lhz, exec_lha,
              exec_stw, exec_stwu, exec_stb, exec_sth, exec_lmw,
              exec_stmw}
_XFORM_MEM = {exec_lwzx, exec_lbzx, exec_lhzx, exec_lhax,
              exec_stwx, exec_stbx, exec_sthx}
_XFORM_ARITH = {exec_add, exec_subf, exec_mullw, exec_divw, exec_divwu}
_XFORM_LOGIC = {exec_and, exec_or, exec_xor, exec_nand, exec_nor,
                exec_slw, exec_srw, exec_sraw}


def format_instr(i: PPCInstr, addr: int = 0) -> str:
    fn = i.execute
    name = i.mnemonic
    if fn is exec_illegal:
        return f".long {i.word:#010x}  (illegal)"
    if fn in _DFORM_ARITH:
        if fn is exec_addi and i.ra == 0:
            return f"li r{i.rt},{to_signed(i.imm)}"
        if fn is exec_addis and i.ra == 0:
            return f"lis r{i.rt},{to_signed(i.imm)}"
        return f"{name} r{i.rt},r{i.ra},{to_signed(i.imm)}"
    if fn in _DFORM_LOGIC:
        if fn is exec_ori and i.rt == 0 and i.ra == 0 and i.imm == 0:
            return "nop"
        return f"{name} r{i.ra},r{i.rt},{i.imm}"
    if fn in _DFORM_MEM:
        return f"{name} r{i.rt},{to_signed(i.imm)}(r{i.ra})"
    if fn in _XFORM_MEM:
        return f"{name} r{i.rt},r{i.ra},r{i.rb}"
    if fn in _XFORM_ARITH or fn is exec_neg:
        if fn is exec_neg:
            return f"neg r{i.rt},r{i.ra}"
        return f"{name} r{i.rt},r{i.ra},r{i.rb}"
    if fn in _XFORM_LOGIC:
        if fn is exec_or and i.rt == i.rb:
            return f"mr r{i.ra},r{i.rt}"
        return f"{name} r{i.ra},r{i.rt},r{i.rb}"
    if fn is exec_srawi:
        return f"srawi r{i.ra},r{i.rt},{i.rb}"
    if fn is exec_rlwinm:
        return f"rlwinm r{i.ra},r{i.rt},{i.rb},{i.imm},{i.op2}"
    if fn is exec_cmpwi:
        return f"cmpwi r{i.ra},{to_signed(i.imm)}"
    if fn is exec_cmplwi:
        return f"cmplwi r{i.ra},{i.imm}"
    if fn is exec_cmpw:
        return f"cmpw r{i.ra},r{i.rb}"
    if fn is exec_cmplw:
        return f"cmplw r{i.ra},r{i.rb}"
    if fn is exec_b:
        target = i.imm if i.op2 & 2 else (addr + i.imm) & 0xFFFFFFFF
        return f"{name} {target:#x}"
    if fn is exec_bc:
        target = i.imm if i.op2 & 2 else (addr + i.imm) & 0xFFFFFFFF
        cond = _bc_name(i.rt, i.ra)
        return f"{cond} {target:#x}"
    if fn is exec_bclr:
        return "blr" if i.rt & 0x14 == 0x14 else f"bclr {i.rt},{i.ra}"
    if fn is exec_bcctr:
        return "bctr" if i.rt & 0x14 == 0x14 else f"bcctr {i.rt},{i.ra}"
    if fn is exec_mfspr:
        if i.imm == SPR_LR:
            return f"mflr r{i.rt}"
        if i.imm == SPR_CTR:
            return f"mfctr r{i.rt}"
        return f"mfspr r{i.rt},{i.imm}"
    if fn is exec_mtspr:
        if i.imm == SPR_LR:
            return f"mtlr r{i.rt}"
        if i.imm == SPR_CTR:
            return f"mtctr r{i.rt}"
        return f"mtspr {i.imm},r{i.rt}"
    if fn is exec_mfmsr:
        return f"mfmsr r{i.rt}"
    if fn is exec_mtmsr:
        return f"mtmsr r{i.rt}"
    if fn is exec_mfcr:
        return f"mfcr r{i.rt}"
    if fn is exec_sc:
        return "sc"
    if fn is exec_twi:
        return f"twi {i.rt},r{i.ra},{to_signed(i.imm)}"
    if fn is exec_tw:
        return f"tw {i.rt},r{i.ra},r{i.rb}"
    if fn is exec_rfi:
        return "rfi"
    return name


def _bc_name(bo: int, bi: int) -> str:
    if bo & 0x10:
        return "bc"
    cond = ("lt", "gt", "eq", "so")[bi & 3]
    crf = bi >> 2
    prefix = "b" if bo & 0x8 else "bn"
    suffix = f" cr{crf}," if crf else ""
    return f"{prefix}{cond}{suffix}".rstrip(",")


def disassemble_word(word: int, addr: int = 0) -> Tuple[PPCInstr, str]:
    instr = decoder.decode(word, addr)
    return instr, format_instr(instr, addr)


def disassemble_range(raw: bytes, addr: int, count: int = 16) -> List[str]:
    lines: List[str] = []
    for index in range(min(count, len(raw) // 4)):
        word = int.from_bytes(raw[index * 4:index * 4 + 4], "big")
        _, text = disassemble_word(word, addr + index * 4)
        hexbytes = " ".join(f"{b:02x}"
                            for b in raw[index * 4:index * 4 + 4])
        lines.append(f"{addr + index * 4:08x}: {hexbytes}   {text}")
    return lines
