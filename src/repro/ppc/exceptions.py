"""PowerPC exception vectors and the fault type raised by the G4 core.

The vector set matches the crash-cause buckets of the paper's Table 4:
DSI faults become "Bad Area" (or "Bus Error" when the cause is a
protection violation), ISI and Program faults become "Illegal
Instruction", the kernel's exception-entry stack-range wrapper turns
out-of-range stack pointers into "Stack Overflow", machine checks map
to "Machine Check", and unknown vectors to "Bad Trap".
"""

from __future__ import annotations

import enum

from repro.isa.faults import Fault


class PPCVector(enum.IntEnum):
    """PowerPC exception vector offsets (subset of the OEA model)."""

    SYSTEM_RESET = 0x100
    MACHINE_CHECK = 0x200
    DSI = 0x300                  # data storage interrupt
    ISI = 0x400                  # instruction storage interrupt
    EXTERNAL = 0x500
    ALIGNMENT = 0x600
    PROGRAM = 0x700              # illegal instruction / trap / privileged
    FP_UNAVAILABLE = 0x800
    DECREMENTER = 0x900
    SYSCALL = 0xC00
    TRACE = 0xD00
    PERFORMANCE_MONITOR = 0xF00
    UNKNOWN = 0xFFF              # corrupted vectoring: "Bad Trap"


class ProgramReason(enum.Enum):
    """Why a Program exception was raised (DSISR-style detail)."""

    ILLEGAL = "illegal-instruction"
    PRIVILEGED = "privileged-instruction"
    TRAP = "trap-instruction"


class PPCFault(Fault):
    """A hardware exception raised by :class:`repro.ppc.cpu.PPCCPU`."""

    def __init__(self, vector: PPCVector, address: int | None = None,
                 detail: str = "", dsisr: int = 0,
                 program_reason: "ProgramReason | None" = None):
        self.dsisr = dsisr
        self.program_reason = program_reason
        super().__init__(vector=vector, address=address, detail=detail)


#: DSISR bit meaning "access violated protection" (vs unmapped).
DSISR_PROTECTION = 0x08000000
#: DSISR bit meaning the faulting access was a store.
DSISR_STORE = 0x02000000
