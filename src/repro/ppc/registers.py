"""PowerPC register numbering, MSR bits, and the supervisor SPR catalogue.

The paper's G4 register campaign targets the *supervisor model* of the
PowerPC family: memory-management registers, configuration registers,
performance-monitor registers, exception-handling registers, and
cache/memory-subsystem registers — 99 registers, of which only 15 ever
contributed a crash or hang.  The catalogue below reconstructs that
target list from the MPC7450-family user's manual register summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

# Named SPR numbers used by code and by the injection hooks.
SPR_XER = 1
SPR_LR = 8
SPR_CTR = 9
SPR_DSISR = 18
SPR_DAR = 19
SPR_DEC = 22
SPR_SDR1 = 25
SPR_SRR0 = 26
SPR_SRR1 = 27
SPR_SPRG0 = 272
SPR_SPRG1 = 273
SPR_SPRG2 = 274          # the paper's stack-switch scratch register
SPR_SPRG3 = 275
SPR_TBL_READ = 268
SPR_TBU_READ = 269
SPR_TBL_WRITE = 284
SPR_TBU_WRITE = 285
SPR_PVR = 287
SPR_IBAT0U = 528
SPR_DBAT0U = 536
SPR_HID0 = 1008          # BTIC / ICE enable bits live here
SPR_HID1 = 1009
SPR_L2CR = 1017
SPR_ICTC = 1019
SPR_PIR = 1023

# MSR bits (32-bit OEA layout).
MSR_EE = 0x00008000      # external interrupts enabled
MSR_PR = 0x00004000      # problem (user) state
MSR_FP = 0x00002000
MSR_ME = 0x00001000      # machine check enable
MSR_IR = 0x00000020      # instruction address translation
MSR_DR = 0x00000010      # data address translation
MSR_RI = 0x00000002
MSR_LE = 0x00000001

# HID0 bits (MPC7450 family).
HID0_ICE = 0x00008000    # instruction cache enable
HID0_DCE = 0x00004000    # data cache enable
HID0_BTIC = 0x00000020   # branch target instruction cache enable
HID0_BHT = 0x00000004    # branch history table enable


@dataclass(frozen=True)
class SupervisorRegister:
    """One injectable supervisor register.

    ``spr`` is the SPR number, or ``-1`` for the MSR (which is not an
    SPR but is part of the supervisor model and is the paper's source of
    Machine Check crashes).
    """

    name: str
    spr: int
    bits: int = 32
    description: str = ""


def _sprg_block() -> Tuple[SupervisorRegister, ...]:
    """SPRG0-SPRG7 (the 7450 family extends the classic four to eight)."""
    sprs = (272, 273, 274, 275, 276, 277, 278, 279)
    return tuple(
        SupervisorRegister(f"SPRG{index}", spr, 32, "OS scratch register")
        for index, spr in enumerate(sprs))


def _bat_block() -> Tuple[SupervisorRegister, ...]:
    """Eight instruction + eight data BAT pairs (7455 extended BATs)."""
    out = []
    for index in range(4):
        out.append(SupervisorRegister(f"IBAT{index}U", 528 + 2 * index, 32,
                                      "instruction BAT upper"))
        out.append(SupervisorRegister(f"IBAT{index}L", 529 + 2 * index, 32,
                                      "instruction BAT lower"))
    for index in range(4):
        out.append(SupervisorRegister(f"IBAT{index + 4}U",
                                      560 + 2 * index, 32,
                                      "instruction BAT upper (extended)"))
        out.append(SupervisorRegister(f"IBAT{index + 4}L",
                                      561 + 2 * index, 32,
                                      "instruction BAT lower (extended)"))
    for index in range(4):
        out.append(SupervisorRegister(f"DBAT{index}U", 536 + 2 * index, 32,
                                      "data BAT upper"))
        out.append(SupervisorRegister(f"DBAT{index}L", 537 + 2 * index, 32,
                                      "data BAT lower"))
    for index in range(4):
        out.append(SupervisorRegister(f"DBAT{index + 4}U",
                                      568 + 2 * index, 32,
                                      "data BAT upper (extended)"))
        out.append(SupervisorRegister(f"DBAT{index + 4}L",
                                      569 + 2 * index, 32,
                                      "data BAT lower (extended)"))
    return tuple(out)


def _pm_block() -> Tuple[SupervisorRegister, ...]:
    """Performance-monitor registers (supervisor access copies)."""
    out = [SupervisorRegister("MMCR0", 952, 32, "perf monitor control 0"),
           SupervisorRegister("MMCR1", 956, 32, "perf monitor control 1"),
           SupervisorRegister("MMCR2", 944, 32, "perf monitor control 2"),
           SupervisorRegister("BAMR", 951, 32, "breakpoint address mask"),
           SupervisorRegister("SIAR", 955, 32, "sampled instruction addr")]
    pmc_sprs = (953, 954, 957, 958, 945, 946)
    for index, spr in enumerate(pmc_sprs, start=1):
        out.append(SupervisorRegister(f"PMC{index}", spr, 32,
                                      "perf monitor counter"))
    return tuple(out)


def _segment_registers() -> Tuple[SupervisorRegister, ...]:
    """The 16 segment registers (modelled as SPR-space 4096+n)."""
    return tuple(
        SupervisorRegister(f"SR{index}", 4096 + index, 32,
                           "memory segment register")
        for index in range(16))


#: The G4 register-injection target list: 99 supervisor registers.
G4_SUPERVISOR_REGISTERS: Tuple[SupervisorRegister, ...] = (
    SupervisorRegister("MSR", -1, 32, "machine state (IR/DR/EE/PR)"),
    SupervisorRegister("SDR1", SPR_SDR1, 32, "page table base"),
    SupervisorRegister("SRR0", SPR_SRR0, 32, "exception return address"),
    SupervisorRegister("SRR1", SPR_SRR1, 32, "exception-saved MSR"),
    SupervisorRegister("DAR", SPR_DAR, 32, "data address register"),
    SupervisorRegister("DSISR", SPR_DSISR, 32, "DSI status"),
    SupervisorRegister("DEC", SPR_DEC, 32, "decrementer"),
    SupervisorRegister("TBL", SPR_TBL_WRITE, 32, "time base lower"),
    SupervisorRegister("TBU", SPR_TBU_WRITE, 32, "time base upper"),
    SupervisorRegister("PVR", SPR_PVR, 32, "processor version (RO)"),
    SupervisorRegister("PIR", SPR_PIR, 32, "processor id"),
    SupervisorRegister("EAR", 282, 32, "external access register"),
    *_sprg_block(),
    *_bat_block(),
    *_pm_block(),
    SupervisorRegister("HID0", SPR_HID0, 32, "hardware config 0"),
    SupervisorRegister("HID1", SPR_HID1, 32, "hardware config 1"),
    SupervisorRegister("IABR", 1010, 32, "instruction addr breakpoint"),
    SupervisorRegister("DABR", 1013, 32, "data addr breakpoint"),
    SupervisorRegister("L2CR", SPR_L2CR, 32, "L2 cache control"),
    SupervisorRegister("L3CR", 1018, 32, "L3 cache control"),
    SupervisorRegister("ICTC", SPR_ICTC, 32, "i-cache throttling"),
    SupervisorRegister("ICTRL", 1011, 32, "instruction cache control"),
    SupervisorRegister("LDSTCR", 1016, 32, "load/store control"),
    SupervisorRegister("LDSTDB", 1012, 32, "load/store debug"),
    SupervisorRegister("MSSCR0", 1014, 32, "memory subsystem control"),
    SupervisorRegister("MSSSR0", 1015, 32, "memory subsystem status"),
    SupervisorRegister("TLBMISS", 980, 32, "TLB miss address"),
    SupervisorRegister("PTEHI", 981, 32, "PTE high word"),
    SupervisorRegister("PTELO", 982, 32, "PTE low word"),
    SupervisorRegister("THRM1", 1020, 32, "thermal assist 1"),
    SupervisorRegister("THRM2", 1021, 32, "thermal assist 2"),
    SupervisorRegister("THRM3", 1022, 32, "thermal assist 3"),
    SupervisorRegister("L3PM", 983, 32, "L3 private memory address"),
    SupervisorRegister("L3ITCR0", 984, 32, "L3 input timing control"),
    *_segment_registers(),
)

assert len(G4_SUPERVISOR_REGISTERS) == 99, len(G4_SUPERVISOR_REGISTERS)
