"""The G4-like CPU core: fixed-width fetch/decode/execute.

Architectural choices that matter to the study:

* **32 GPRs** — the kcc PPC backend parks locals in callee-saved
  registers; corrupted values can sit unconsumed for a long time,
  which is why G4 code-error latencies skew long in the paper.
* **word-aligned fetch** — the program counter's two low bits do not
  exist; a bit flip in them is architecturally masked.
* **alignment exceptions** — word/halfword memory operands must be
  naturally aligned (Table 4's Alignment category).
* **MSR[IR]/MSR[DR]** — clearing either translation bit makes every
  kernel-high access raise Machine Check, the paper's MSR scenario.
* **SPR semantics hook** — ``mtspr`` (and the register injector) funnel
  through :meth:`PPCCPU.set_spr`; the machine layer installs a semantic
  callback so SDR1/HID0/BAT corruption has system-level consequences.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.isa.bits import MASK32
from repro.isa.debug import DebugUnit
from repro.isa.faults import AccessKind, MemoryFault
from repro.isa.memory import AddressSpace, PhysicalMemory
from repro.ppc import decoder
from repro.ppc.exceptions import (
    DSISR_PROTECTION, DSISR_STORE, PPCFault, PPCVector, ProgramReason,
)
from repro.ppc.insn import PPCInstr
from repro.ppc.registers import (
    MSR_DR, MSR_IR, MSR_ME, MSR_PR, SPR_CTR, SPR_LR, SPR_PVR, SPR_XER,
)


class PPCCPU:
    """A 32-bit G4-flavoured processor core (big-endian)."""

    #: The paper's G4 runs at 1.0 GHz.
    CLOCK_HZ = 1_000_000_000
    LITTLE_ENDIAN = False
    NAME = "G4"

    #: Kernel-high addresses require translation to be on.
    TRANSLATION_BASE = 0x80000000

    def __init__(self, memory: Optional[PhysicalMemory] = None,
                 aspace: Optional[AddressSpace] = None,
                 debug: Optional[DebugUnit] = None) -> None:
        self.mem = memory if memory is not None else PhysicalMemory()
        self.aspace = aspace if aspace is not None else \
            AddressSpace(self.mem)
        self.debug = debug if debug is not None else DebugUnit(1, 1)

        self.gpr = [0] * 32
        self.pc = 0
        self.current_pc = 0
        self.lr = 0
        self.ctr = 0
        self.cr = 0
        self.xer = 0
        self.msr = MSR_ME | MSR_IR | MSR_DR
        self.spr: Dict[int, int] = {SPR_PVR: 0x80010201}   # MPC7455 2.1

        self.cycles = 0
        self.instret = 0
        self.halted = False
        self.user_mode = False

        # Flight-recorder hook (repro.trace.recorder.TraceRecorder).
        # None when tracing is disabled: every emission site below
        # guards on this one attribute, so the disabled hot path pays
        # a single flag test and nothing else.  An armed recorder only
        # reads state — simulated cycles/instret/RNG are untouched.
        self.tracer = None

        # Semantic side effects of supervisor-state writes; installed by
        # the machine layer (see repro.machine.register_semantics).
        self.on_spr_write: Optional[Callable[[int, int, int], None]] = None
        # Set when HID0 corruption enabled the BTIC over garbage; the
        # next taken branch fetches a bogus target (paper Section 5.2).
        self.btic_poisoned = False

        self._dtrans_on = True
        self._itrans_on = True
        # Fault overrides for kernel-high accesses, installed by the
        # register-semantics layer: None (healthy), "mc" (machine
        # check: translation disabled), "dsi"/"isi" (page tables or
        # BATs corrupted).
        self._high_data_fault: Optional[str] = None
        self._high_fetch_fault: Optional[str] = None
        self._icache: Dict[int, PPCInstr] = {}
        # Warm tier: decodes inherited from a fork parent (or demoted
        # by a code write); valid bytes-wise, but the fetch checks have
        # not run on this machine, so first use revalidates like a
        # miss.  The dict may be shared by reference with a fork
        # relative (``_warm_owned`` False) and is copied before the
        # first mutation, so inheriting costs O(1), not O(entries).
        self._icache_warm: Dict[int, PPCInstr] = {}
        self._warm_owned = True
        # bumped whenever either cache tier changes; guards the frozen
        # merged snapshot handed to fork children
        self._icache_version = 0
        self._snapshot: Optional[Dict[int, PPCInstr]] = None
        self._snapshot_version = -1
        # compiled-block cache (attached by Machine in block exec mode);
        # None means the step core runs alone
        self._block_cache = None

    # ------------------------------------------------------------------
    # condition register helpers

    def set_cr0_signed(self, value: int) -> None:
        self.set_crf_cmp_signed(0, value - (1 << 32)
                                if value & 0x80000000 else value, 0)

    def set_crf_cmp_signed(self, field: int, a: int, b: int) -> None:
        if a < b:
            bits = decoder.CR_LT
        elif a > b:
            bits = decoder.CR_GT
        else:
            bits = decoder.CR_EQ
        shift = 28 - 4 * field
        self.cr = (self.cr & ~(0xF << shift)) | (bits << shift)

    def set_crf_cmp_unsigned(self, field: int, a: int, b: int) -> None:
        self.set_crf_cmp_signed(field, a, b)

    def get_cr_bit(self, bit: int) -> int:
        return (self.cr >> (31 - bit)) & 1

    # ------------------------------------------------------------------
    # MSR / SPR

    def set_msr(self, value: int) -> None:
        self.msr = value & MASK32
        self._dtrans_on = bool(value & MSR_DR)
        self._itrans_on = bool(value & MSR_IR)
        self.user_mode = bool(value & MSR_PR)
        if not self._dtrans_on:
            self._high_data_fault = "mc"
        elif self._high_data_fault == "mc":
            self._high_data_fault = None
        if not self._itrans_on:
            self._high_fetch_fault = "mc"
        elif self._high_fetch_fault == "mc":
            self._high_fetch_fault = None

    def get_spr(self, spr: int) -> int:
        if spr == SPR_LR:
            return self.lr
        if spr == SPR_CTR:
            return self.ctr
        if spr == SPR_XER:
            return self.xer
        return self.spr.get(spr, 0)

    def set_spr(self, spr: int, value: int) -> None:
        value &= MASK32
        if spr == SPR_LR:
            self.lr = value
            return
        if spr == SPR_CTR:
            self.ctr = value
            return
        if spr == SPR_XER:
            self.xer = value
            return
        old = self.spr.get(spr, 0)
        self.spr[spr] = value
        if self.tracer is not None and old != value:
            self.tracer.on_reg_write(self, f"spr{spr}", old, value)
        if self.on_spr_write is not None:
            self.on_spr_write(spr, old, value)

    def check_supervisor_spr(self, spr: int) -> None:
        if spr in (SPR_LR, SPR_CTR, SPR_XER):
            return
        self.check_privileged(f"spr {spr}")

    def check_privileged(self, what: str) -> None:
        if self.user_mode:
            self.fault(PPCVector.PROGRAM,
                       detail=f"privileged in user state: {what}",
                       program_reason=ProgramReason.PRIVILEGED)

    # ------------------------------------------------------------------
    # memory access

    def _memfault(self, mf: MemoryFault) -> None:
        dsisr = DSISR_STORE if mf.kind is AccessKind.WRITE else 0
        if mf.reason is MemoryFault.Reason.PROTECTION:
            dsisr |= DSISR_PROTECTION
        self.spr[18] = dsisr                      # DSISR
        self.spr[19] = mf.address & MASK32        # DAR
        raise PPCFault(PPCVector.DSI, mf.address, mf.detail,
                       dsisr=dsisr) from None

    def _high_data_trap(self, addr: int) -> None:
        if self._high_data_fault == "mc":
            raise PPCFault(PPCVector.MACHINE_CHECK, addr,
                           "data access with MSR[DR]=0")
        self.spr[18] = 0x40000000
        self.spr[19] = addr
        raise PPCFault(PPCVector.DSI, addr,
                       "translation garbage (SDR1/DBAT corrupted)")

    def load(self, addr: int, width: int) -> int:
        addr &= MASK32
        if self._high_data_fault is not None and \
                addr >= self.TRANSLATION_BASE:
            self._high_data_trap(addr)
        if width > 1 and addr % width:
            # the MPC7450 family completes ordinary misaligned accesses
            # in hardware, at a cost (the paper's Figure 9 loads from
            # 0x4d without an alignment interrupt); only string/multiple
            # instructions (lmw/stmw) require alignment
            self.cycles += 2
        try:
            self.aspace.check(addr, width, AccessKind.READ)
        except MemoryFault as mf:
            self._memfault(mf)
        if width == 4:
            value = self.mem.read_u32(addr, False)
        elif width == 2:
            value = self.mem.read_u16(addr, False)
        else:
            value = self.mem.read_u8(addr)
        self.cycles += 2
        if self.tracer is not None:
            self.tracer.on_load(self, addr, width, value)
        if self.debug._watchpoints:
            self.debug.check_access(addr, width, AccessKind.READ,
                                    self.cycles)
        return value

    def store(self, addr: int, value: int, width: int) -> None:
        addr &= MASK32
        if self._high_data_fault is not None and \
                addr >= self.TRANSLATION_BASE:
            self._high_data_trap(addr)
        if width > 1 and addr % width:
            raise PPCFault(PPCVector.ALIGNMENT, addr,
                           f"unaligned {width}-byte store")
        try:
            self.aspace.check(addr, width, AccessKind.WRITE)
        except MemoryFault as mf:
            self._memfault(mf)
        if width == 4:
            self.mem.write_u32(addr, value, False)
        elif width == 2:
            self.mem.write_u16(addr, value, False)
        else:
            self.mem.write_u8(addr, value)
        self.cycles += 2
        if self.tracer is not None:
            self.tracer.on_store(self, addr, width, value)
        if self.debug._watchpoints:
            self.debug.check_access(addr, width, AccessKind.WRITE,
                                    self.cycles)

    # ------------------------------------------------------------------
    # control

    def branch(self, target: int) -> None:
        if self.btic_poisoned:
            # HID0[BTIC] was enabled over an invalid branch-target cache:
            # the fetched target is garbage (paper: Invalid Instruction).
            self.btic_poisoned = False
            self.fault(PPCVector.PROGRAM,
                       detail="BTIC enabled with invalid contents",
                       program_reason=ProgramReason.ILLEGAL)
        self.pc = target & 0xFFFFFFFC
        self.cycles += 2

    def fault(self, vector: PPCVector, address: Optional[int] = None,
              detail: str = "", dsisr: int = 0,
              program_reason: Optional[ProgramReason] = None) -> None:
        raise PPCFault(vector, address, detail, dsisr=dsisr,
                       program_reason=program_reason)

    # ------------------------------------------------------------------
    # decode cache + step

    def flush_icache(self) -> None:
        self._icache.clear()
        self._icache_warm = {}
        self._warm_owned = True
        self._icache_version += 1
        if self._block_cache is not None:
            self._block_cache.flush()

    def _own_warm(self) -> Dict[int, PPCInstr]:
        if not self._warm_owned:
            self._icache_warm = dict(self._icache_warm)
            self._warm_owned = True
        return self._icache_warm

    def invalidate_icache(self, addr: int, size: int = 1) -> None:
        """Evict the word(s) a write to ``[addr, addr+size)`` touches.

        Fixed 4-byte instructions make this exact: only the overwritten
        words can decode differently.  Survivors demote to the warm
        tier so their next fetch re-runs the permission/translation
        checks, matching the full flush this replaces.
        """
        warm = self._own_warm()
        first = addr & ~3
        last = (addr + max(size, 1) - 1) & ~3
        for word_addr in range(first, last + 4, 4):
            self._icache.pop(word_addr & MASK32, None)
            warm.pop(word_addr & MASK32, None)
        if self._icache:
            warm.update(self._icache)
            self._icache.clear()
        self._icache_version += 1
        if self._block_cache is not None:
            self._block_cache.invalidate(addr, size)

    def icache_snapshot(self) -> Dict[int, PPCInstr]:
        """A frozen warm-tier image for a fork child (never mutated).

        Rebuilt only when a cache tier changed since the last fork, so
        forking many clones from one static base pays the merge once.
        """
        if self._snapshot is None or \
                self._snapshot_version != self._icache_version:
            merged = dict(self._icache_warm)
            merged.update(self._icache)
            self._snapshot = merged
            self._snapshot_version = self._icache_version
        return self._snapshot

    def inherit_icache(self, src: "PPCCPU") -> None:
        """Adopt *src*'s decodes as the warm tier (fork instant only).

        Safe for the same reason as on the x86 core: identical memory
        at fork, write-path invalidation afterwards, and first-use
        revalidation of the fetch checks on this machine.  The snapshot
        dict is shared by reference and copied only if this core ever
        needs to mutate it (a text write).
        """
        self._icache.clear()
        self._icache_warm = src.icache_snapshot()
        self._warm_owned = False
        self._icache_version += 1

    def _validate_fetch(self, addr: int) -> None:
        if self._high_fetch_fault is not None and \
                addr >= self.TRANSLATION_BASE:
            if self._high_fetch_fault == "mc":
                raise PPCFault(PPCVector.MACHINE_CHECK, addr,
                               "instruction fetch with MSR[IR]=0")
            raise PPCFault(PPCVector.ISI, addr,
                           "fetch translation garbage (IBAT corrupted)")
        try:
            self.aspace.check(addr, 4, AccessKind.FETCH)
        except MemoryFault as mf:
            if mf.reason is MemoryFault.Reason.PROTECTION:
                raise PPCFault(PPCVector.ISI, mf.address,
                               "fetch protection violation") from None
            raise PPCFault(PPCVector.ISI, mf.address,
                           "fetch from unmapped address") from None

    def decode_at(self, addr: int) -> PPCInstr:
        self._validate_fetch(addr)
        word = self.mem.read_u32(addr, False)
        return decoder.decode(word, addr)

    def step(self) -> None:
        """Execute one instruction (or raise a :class:`PPCFault`)."""
        if self.halted:
            self.cycles += 1
            return
        pc = self.pc & 0xFFFFFFFC
        self.current_pc = pc
        if self.tracer is not None:
            self.tracer.on_fetch(self, pc)
        if self.debug._insn_bps:
            self.debug.check_fetch(pc, self.cycles)
        instr = self._icache.get(pc)
        if instr is None:
            # No pop: the warm dict may be shared with fork relatives.
            # ``_icache`` is consulted first, so the duplicate is inert.
            instr = self._icache_warm.get(pc)
            if instr is not None:
                self._validate_fetch(pc)
            else:
                instr = self.decode_at(pc)
            self._icache[pc] = instr
            self._icache_version += 1
        self.pc = (pc + 4) & MASK32
        instr.execute(self, instr)
        self.cycles += instr.cycles
        self.instret += 1

    # ------------------------------------------------------------------
    # diagnostics

    def snapshot(self) -> Dict[str, int]:
        state = {f"r{index}": value
                 for index, value in enumerate(self.gpr)}
        state["pc"] = self.current_pc
        state["lr"] = self.lr
        state["ctr"] = self.ctr
        state["cr"] = self.cr
        state["msr"] = self.msr
        state["dar"] = self.spr.get(19, 0)
        state["dsisr"] = self.spr.get(18, 0)
        return state
