"""PowerPC subset decoder and instruction semantics for the G4-like core.

The decoder dispatches on the 6-bit primary opcode (bits 31-26) and, for
the register-register family (opcode 31) and the branch-unit family
(opcode 19), on the 10-bit extended opcode.  Our subset defines 25 of
the 64 primary opcodes and a few dozen extended opcodes; everything else
raises a Program exception with the illegal-instruction reason — the
sparse encoding space that gives the G4 its 41% Illegal-Instruction
share in the paper's code campaigns.

Semantics notes:

* ``divw`` by zero yields an undefined (here: zero) result rather than
  trapping — the PowerPC has no divide-error exception, which is why the
  paper's Table 4 has no Divide Error category;
* word and halfword loads/stores to unaligned addresses raise Alignment
  (Table 4 lists Alignment at 1-2% of crashes);
* ``twi``/``tw`` implement the kernel's BUG() trap (Program exception
  with the trap reason — surfaced as Kernel Panic by the classifier).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.isa.bits import MASK32, sign_extend, to_signed
from repro.ppc.exceptions import PPCVector, ProgramReason
from repro.ppc.insn import PPCInstr

# CR0 bits within the 4-bit field (MSB-first PowerPC convention).
CR_LT = 0x8
CR_GT = 0x4
CR_EQ = 0x2
CR_SO = 0x1


def _d(word: int) -> int:
    """Sign-extended 16-bit displacement / immediate."""
    return sign_extend(word & 0xFFFF, 16)


def _uimm(word: int) -> int:
    return word & 0xFFFF


def _rt(word: int) -> int:
    return (word >> 21) & 0x1F


def _ra(word: int) -> int:
    return (word >> 16) & 0x1F


def _rb(word: int) -> int:
    return (word >> 11) & 0x1F


def _spr_field(word: int) -> int:
    """The SPR number with its two 5-bit halves swapped, as encoded."""
    return ((word >> 16) & 0x1F) | (((word >> 11) & 0x1F) << 5)


# ---------------------------------------------------------------------------
# semantics


def exec_illegal(cpu, i: PPCInstr) -> None:
    cpu.fault(PPCVector.PROGRAM, detail=f"illegal encoding {i.word:#010x}",
              program_reason=ProgramReason.ILLEGAL)


def exec_addi(cpu, i: PPCInstr) -> None:
    base = cpu.gpr[i.ra] if i.ra else 0
    cpu.gpr[i.rt] = (base + i.imm) & MASK32


def exec_addis(cpu, i: PPCInstr) -> None:
    base = cpu.gpr[i.ra] if i.ra else 0
    cpu.gpr[i.rt] = (base + (i.imm << 16)) & MASK32


def exec_addic(cpu, i: PPCInstr) -> None:
    total = cpu.gpr[i.ra] + i.imm
    cpu.xer = (cpu.xer & ~0x20000000) | \
        (0x20000000 if total > MASK32 else 0)      # XER[CA]
    cpu.gpr[i.rt] = total & MASK32


def exec_subfic(cpu, i: PPCInstr) -> None:
    result = (i.imm - cpu.gpr[i.ra]) & MASK32
    carry = 1 if cpu.gpr[i.ra] <= (i.imm & MASK32) else 0
    cpu.xer = (cpu.xer & ~0x20000000) | (0x20000000 if carry else 0)
    cpu.gpr[i.rt] = result


def exec_adde(cpu, i: PPCInstr) -> None:
    carry = 1 if cpu.xer & 0x20000000 else 0
    total = cpu.gpr[i.ra] + cpu.gpr[i.rb] + carry
    cpu.xer = (cpu.xer & ~0x20000000) | \
        (0x20000000 if total > MASK32 else 0)
    cpu.gpr[i.rt] = total & MASK32


def exec_addze(cpu, i: PPCInstr) -> None:
    carry = 1 if cpu.xer & 0x20000000 else 0
    total = cpu.gpr[i.ra] + carry
    cpu.xer = (cpu.xer & ~0x20000000) | \
        (0x20000000 if total > MASK32 else 0)
    cpu.gpr[i.rt] = total & MASK32


def exec_cntlzw(cpu, i: PPCInstr) -> None:
    value = cpu.gpr[i.rt]
    cpu.gpr[i.ra] = 32 - value.bit_length() if value else 32


def exec_extsb(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.ra] = sign_extend(cpu.gpr[i.rt] & 0xFF, 8)


def exec_extsh(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.ra] = sign_extend(cpu.gpr[i.rt] & 0xFFFF, 16)


def exec_mulli(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.rt] = (to_signed(cpu.gpr[i.ra]) * i.imm) & MASK32
    cpu.cycles += 3


def exec_add(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.rt] = (cpu.gpr[i.ra] + cpu.gpr[i.rb]) & MASK32


def exec_subf(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.rt] = (cpu.gpr[i.rb] - cpu.gpr[i.ra]) & MASK32


def exec_neg(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.rt] = (-cpu.gpr[i.ra]) & MASK32


def exec_mullw(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.rt] = (to_signed(cpu.gpr[i.ra]) *
                     to_signed(cpu.gpr[i.rb])) & MASK32
    cpu.cycles += 3


def exec_divw(cpu, i: PPCInstr) -> None:
    divisor = to_signed(cpu.gpr[i.rb])
    if divisor == 0:
        cpu.gpr[i.rt] = 0        # boundedly-undefined; no trap on PowerPC
    else:
        cpu.gpr[i.rt] = int(to_signed(cpu.gpr[i.ra]) / divisor) & MASK32
    cpu.cycles += 19


def exec_divwu(cpu, i: PPCInstr) -> None:
    divisor = cpu.gpr[i.rb]
    if divisor == 0:
        cpu.gpr[i.rt] = 0
    else:
        cpu.gpr[i.rt] = (cpu.gpr[i.ra] // divisor) & MASK32
    cpu.cycles += 19


def exec_and(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.ra] = cpu.gpr[i.rt] & cpu.gpr[i.rb]


def exec_or(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.ra] = cpu.gpr[i.rt] | cpu.gpr[i.rb]


def exec_xor(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.ra] = cpu.gpr[i.rt] ^ cpu.gpr[i.rb]


def exec_nand(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.ra] = (~(cpu.gpr[i.rt] & cpu.gpr[i.rb])) & MASK32


def exec_nor(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.ra] = (~(cpu.gpr[i.rt] | cpu.gpr[i.rb])) & MASK32


def exec_slw(cpu, i: PPCInstr) -> None:
    amount = cpu.gpr[i.rb] & 0x3F
    cpu.gpr[i.ra] = (cpu.gpr[i.rt] << amount) & MASK32 if amount < 32 else 0


def exec_srw(cpu, i: PPCInstr) -> None:
    amount = cpu.gpr[i.rb] & 0x3F
    cpu.gpr[i.ra] = (cpu.gpr[i.rt] >> amount) if amount < 32 else 0


def exec_sraw(cpu, i: PPCInstr) -> None:
    amount = cpu.gpr[i.rb] & 0x3F
    value = to_signed(cpu.gpr[i.rt])
    cpu.gpr[i.ra] = (value >> min(amount, 31)) & MASK32


def exec_srawi(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.ra] = (to_signed(cpu.gpr[i.rt]) >> i.rb) & MASK32


def exec_ori(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.ra] = cpu.gpr[i.rt] | i.imm


def exec_oris(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.ra] = cpu.gpr[i.rt] | (i.imm << 16)


def exec_xori(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.ra] = cpu.gpr[i.rt] ^ i.imm


def exec_xoris(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.ra] = cpu.gpr[i.rt] ^ (i.imm << 16)


def exec_andi_dot(cpu, i: PPCInstr) -> None:
    result = cpu.gpr[i.rt] & i.imm
    cpu.gpr[i.ra] = result
    cpu.set_cr0_signed(result)


def exec_andis_dot(cpu, i: PPCInstr) -> None:
    result = cpu.gpr[i.rt] & (i.imm << 16)
    cpu.gpr[i.ra] = result
    cpu.set_cr0_signed(result)


def exec_rlwinm(cpu, i: PPCInstr) -> None:
    sh, mb, me = i.rb, i.imm, i.op2
    value = cpu.gpr[i.rt]
    rotated = ((value << sh) | (value >> (32 - sh))) & MASK32 if sh \
        else value
    if mb <= me:
        mask = ((1 << (me - mb + 1)) - 1) << (31 - me)
    else:
        mask = MASK32 ^ (((1 << (mb - me - 1)) - 1) << (31 - mb + 1))
    cpu.gpr[i.ra] = rotated & mask


def exec_cmpwi(cpu, i: PPCInstr) -> None:
    cpu.set_crf_cmp_signed(i.op2, to_signed(cpu.gpr[i.ra]), i.imm)


def exec_cmplwi(cpu, i: PPCInstr) -> None:
    cpu.set_crf_cmp_unsigned(i.op2, cpu.gpr[i.ra], i.imm)


def exec_cmpw(cpu, i: PPCInstr) -> None:
    cpu.set_crf_cmp_signed(i.op2, to_signed(cpu.gpr[i.ra]),
                           to_signed(cpu.gpr[i.rb]))


def exec_cmplw(cpu, i: PPCInstr) -> None:
    cpu.set_crf_cmp_unsigned(i.op2, cpu.gpr[i.ra], cpu.gpr[i.rb])


# -- loads/stores -----------------------------------------------------------


def exec_lwz(cpu, i: PPCInstr) -> None:
    addr = ((cpu.gpr[i.ra] if i.ra else 0) + i.imm) & MASK32
    cpu.gpr[i.rt] = cpu.load(addr, 4)


def exec_lwzu(cpu, i: PPCInstr) -> None:
    addr = (cpu.gpr[i.ra] + i.imm) & MASK32
    cpu.gpr[i.rt] = cpu.load(addr, 4)
    cpu.gpr[i.ra] = addr


def exec_lbz(cpu, i: PPCInstr) -> None:
    addr = ((cpu.gpr[i.ra] if i.ra else 0) + i.imm) & MASK32
    cpu.gpr[i.rt] = cpu.load(addr, 1)


def exec_lhz(cpu, i: PPCInstr) -> None:
    addr = ((cpu.gpr[i.ra] if i.ra else 0) + i.imm) & MASK32
    cpu.gpr[i.rt] = cpu.load(addr, 2)


def exec_lha(cpu, i: PPCInstr) -> None:
    addr = ((cpu.gpr[i.ra] if i.ra else 0) + i.imm) & MASK32
    cpu.gpr[i.rt] = sign_extend(cpu.load(addr, 2), 16)


def exec_stw(cpu, i: PPCInstr) -> None:
    addr = ((cpu.gpr[i.ra] if i.ra else 0) + i.imm) & MASK32
    cpu.store(addr, cpu.gpr[i.rt], 4)


def exec_stwu(cpu, i: PPCInstr) -> None:
    addr = (cpu.gpr[i.ra] + i.imm) & MASK32
    cpu.store(addr, cpu.gpr[i.rt], 4)
    cpu.gpr[i.ra] = addr


def exec_stb(cpu, i: PPCInstr) -> None:
    addr = ((cpu.gpr[i.ra] if i.ra else 0) + i.imm) & MASK32
    cpu.store(addr, cpu.gpr[i.rt], 1)


def exec_sth(cpu, i: PPCInstr) -> None:
    addr = ((cpu.gpr[i.ra] if i.ra else 0) + i.imm) & MASK32
    cpu.store(addr, cpu.gpr[i.rt], 2)


def exec_lwzx(cpu, i: PPCInstr) -> None:
    addr = ((cpu.gpr[i.ra] if i.ra else 0) + cpu.gpr[i.rb]) & MASK32
    cpu.gpr[i.rt] = cpu.load(addr, 4)


def exec_stwx(cpu, i: PPCInstr) -> None:
    addr = ((cpu.gpr[i.ra] if i.ra else 0) + cpu.gpr[i.rb]) & MASK32
    cpu.store(addr, cpu.gpr[i.rt], 4)


def exec_lbzx(cpu, i: PPCInstr) -> None:
    addr = ((cpu.gpr[i.ra] if i.ra else 0) + cpu.gpr[i.rb]) & MASK32
    cpu.gpr[i.rt] = cpu.load(addr, 1)


def exec_stbx(cpu, i: PPCInstr) -> None:
    addr = ((cpu.gpr[i.ra] if i.ra else 0) + cpu.gpr[i.rb]) & MASK32
    cpu.store(addr, cpu.gpr[i.rt], 1)


def exec_lhzx(cpu, i: PPCInstr) -> None:
    addr = ((cpu.gpr[i.ra] if i.ra else 0) + cpu.gpr[i.rb]) & MASK32
    cpu.gpr[i.rt] = cpu.load(addr, 2)


def exec_lhax(cpu, i: PPCInstr) -> None:
    # The paper's Figure 15: a bit flip turns mflr into lhax and the
    # resulting gpr8+gpr0 address crashes with "bad area".
    addr = ((cpu.gpr[i.ra] if i.ra else 0) + cpu.gpr[i.rb]) & MASK32
    cpu.gpr[i.rt] = sign_extend(cpu.load(addr, 2), 16)


def exec_sthx(cpu, i: PPCInstr) -> None:
    addr = ((cpu.gpr[i.ra] if i.ra else 0) + cpu.gpr[i.rb]) & MASK32
    cpu.store(addr, cpu.gpr[i.rt], 2)


def exec_lmw(cpu, i: PPCInstr) -> None:
    # load multiple word: rt..r31; requires word alignment (this is the
    # instruction class behind Table 4's Alignment category)
    addr = ((cpu.gpr[i.ra] if i.ra else 0) + i.imm) & MASK32
    if addr & 3:
        cpu.fault(PPCVector.ALIGNMENT, addr, "lmw operand not aligned")
    for reg in range(i.rt, 32):
        cpu.gpr[reg] = cpu.load(addr, 4)
        addr = (addr + 4) & MASK32


def exec_stmw(cpu, i: PPCInstr) -> None:
    addr = ((cpu.gpr[i.ra] if i.ra else 0) + i.imm) & MASK32
    if addr & 3:
        cpu.fault(PPCVector.ALIGNMENT, addr, "stmw operand not aligned")
    for reg in range(i.rt, 32):
        cpu.store(addr, cpu.gpr[reg], 4)
        addr = (addr + 4) & MASK32


# -- branches -----------------------------------------------------------------


def exec_b(cpu, i: PPCInstr) -> None:
    if i.op2 & 1:                           # LK
        cpu.lr = cpu.pc
    target = i.imm if i.op2 & 2 else (cpu.current_pc + i.imm) & MASK32
    cpu.branch(target)


def _bc_taken(cpu, bo: int, bi: int) -> bool:
    ctr_ok = True
    if not bo & 0x4:
        cpu.ctr = (cpu.ctr - 1) & MASK32
        ctr_ok = (cpu.ctr == 0) if bo & 0x2 else (cpu.ctr != 0)
    cond_ok = True
    if not bo & 0x10:
        bit = (cpu.cr >> (31 - bi)) & 1
        cond_ok = bool(bit) if bo & 0x8 else not bit
    return ctr_ok and cond_ok


def exec_bc(cpu, i: PPCInstr) -> None:
    if i.op2 & 1:
        cpu.lr = cpu.pc
    if _bc_taken(cpu, i.rt, i.ra):
        target = i.imm if i.op2 & 2 else (cpu.current_pc + i.imm) & MASK32
        cpu.branch(target)


def exec_bclr(cpu, i: PPCInstr) -> None:
    taken = _bc_taken(cpu, i.rt, i.ra)
    target = cpu.lr & ~3
    if i.op2 & 1:
        cpu.lr = cpu.pc
    if taken:
        cpu.branch(target)


def exec_bcctr(cpu, i: PPCInstr) -> None:
    if _bc_taken(cpu, i.rt | 0x4, i.ra):    # bcctr must not decrement CTR
        if i.op2 & 1:
            cpu.lr = cpu.pc
        cpu.branch(cpu.ctr & ~3)


# -- system -----------------------------------------------------------------


def exec_sc(cpu, i: PPCInstr) -> None:
    cpu.fault(PPCVector.SYSCALL, detail="sc")


def exec_twi(cpu, i: PPCInstr) -> None:
    to = i.rt
    a = to_signed(cpu.gpr[i.ra])
    b = i.imm
    if _trap_cond(to, a, b, cpu.gpr[i.ra], b & MASK32):
        cpu.fault(PPCVector.PROGRAM, detail="twi trap (BUG)",
                  program_reason=ProgramReason.TRAP)


def exec_tw(cpu, i: PPCInstr) -> None:
    to = i.rt
    a = to_signed(cpu.gpr[i.ra])
    b = to_signed(cpu.gpr[i.rb])
    if _trap_cond(to, a, b, cpu.gpr[i.ra], cpu.gpr[i.rb]):
        cpu.fault(PPCVector.PROGRAM, detail="tw trap (BUG)",
                  program_reason=ProgramReason.TRAP)


def _trap_cond(to: int, a: int, b: int, ua: int, ub: int) -> bool:
    return bool((to & 0x10 and a < b) or (to & 0x08 and a > b)
                or (to & 0x04 and a == b) or (to & 0x02 and ua < ub)
                or (to & 0x01 and ua > ub))


def exec_mfspr(cpu, i: PPCInstr) -> None:
    cpu.check_supervisor_spr(i.imm)
    cpu.gpr[i.rt] = cpu.get_spr(i.imm)


def exec_mtspr(cpu, i: PPCInstr) -> None:
    cpu.check_supervisor_spr(i.imm)
    cpu.set_spr(i.imm, cpu.gpr[i.rt])


def exec_mfmsr(cpu, i: PPCInstr) -> None:
    cpu.check_privileged("mfmsr")
    cpu.gpr[i.rt] = cpu.msr


def exec_mtmsr(cpu, i: PPCInstr) -> None:
    cpu.check_privileged("mtmsr")
    cpu.set_msr(cpu.gpr[i.rt])


def exec_mfcr(cpu, i: PPCInstr) -> None:
    cpu.gpr[i.rt] = cpu.cr


def exec_rfi(cpu, i: PPCInstr) -> None:
    cpu.check_privileged("rfi")
    cpu.set_msr(cpu.get_spr(27))             # SRR1
    cpu.branch(cpu.get_spr(26) & ~3)         # SRR0
    cpu.cycles += 10


def exec_nopish(cpu, i: PPCInstr) -> None:
    """isync / sync / eieio / dcbf-style barriers: timing only."""
    cpu.cycles += 2


# ---------------------------------------------------------------------------
# decode tables

_EXT31: Dict[int, Callable] = {}
_EXT19: Dict[int, Callable] = {}

#: word -> decoded instruction.  PowerPC decoding depends on nothing
#: but the 32-bit word (branch targets are resolved at execute time
#: from ``cpu.current_pc``) and :class:`PPCInstr` is immutable after
#: construction, so one decode serves every address, machine, and
#: campaign in the process.  Sits *behind* the per-address icache:
#: only decode-cache misses reach it.
_WORD_MEMO: Dict[int, PPCInstr] = {}
_WORD_MEMO_LIMIT = 1 << 16          # bound growth under random flips


def decode(word: int, addr: int = 0) -> PPCInstr:
    """Decode one 32-bit instruction word.  Never raises."""
    instr = _WORD_MEMO.get(word)
    if instr is not None:
        return instr
    opcd = (word >> 26) & 0x3F
    handler = _PRIMARY.get(opcd)
    if handler is None:
        instr = PPCInstr("(illegal)", exec_illegal, word=word)
    else:
        instr = handler(word, addr)
    if len(_WORD_MEMO) < _WORD_MEMO_LIMIT:
        _WORD_MEMO[word] = instr
    return instr


def _mk_dform(mnemonic: str, execute, cycles: int = 1, unsigned: bool = False
              ) -> Callable:
    def build(word: int, addr: int) -> PPCInstr:
        imm = _uimm(word) if unsigned else _d(word)
        return PPCInstr(mnemonic, execute, rt=_rt(word), ra=_ra(word),
                        imm=imm, cycles=cycles, word=word)
    return build


def _build_cmpwi(word: int, addr: int) -> PPCInstr:
    return PPCInstr("cmpwi", exec_cmpwi, ra=_ra(word), imm=_d(word),
                    op2=(word >> 23) & 0x7, word=word)


def _build_cmplwi(word: int, addr: int) -> PPCInstr:
    return PPCInstr("cmplwi", exec_cmplwi, ra=_ra(word), imm=_uimm(word),
                    op2=(word >> 23) & 0x7, word=word)


def _build_twi(word: int, addr: int) -> PPCInstr:
    return PPCInstr("twi", exec_twi, rt=_rt(word), ra=_ra(word),
                    imm=_d(word), word=word)


def _build_b(word: int, addr: int) -> PPCInstr:
    li = sign_extend(word & 0x03FFFFFC, 26)
    aa_lk = word & 3
    name = {0: "b", 1: "bl", 2: "ba", 3: "bla"}[aa_lk]
    return PPCInstr(name, exec_b, imm=li, op2=aa_lk, cycles=2, word=word)


def _build_bc(word: int, addr: int) -> PPCInstr:
    bd = sign_extend(word & 0xFFFC, 16)
    aa_lk = word & 3
    return PPCInstr("bc", exec_bc, rt=_rt(word), ra=_ra(word), imm=bd,
                    op2=aa_lk, cycles=2, word=word)


def _build_sc(word: int, addr: int) -> PPCInstr:
    return PPCInstr("sc", exec_sc, cycles=10, word=word)


def _build_rlwinm(word: int, addr: int) -> PPCInstr:
    sh = (word >> 11) & 0x1F
    mb = (word >> 6) & 0x1F
    me = (word >> 1) & 0x1F
    return PPCInstr("rlwinm", exec_rlwinm, rt=_rt(word), ra=_ra(word),
                    rb=sh, imm=mb, op2=me, word=word)


def _build_19(word: int, addr: int) -> PPCInstr:
    ext = (word >> 1) & 0x3FF
    if ext == 16:
        return PPCInstr("bclr", exec_bclr, rt=_rt(word), ra=_ra(word),
                        op2=word & 1, cycles=2, word=word)
    if ext == 528:
        return PPCInstr("bcctr", exec_bcctr, rt=_rt(word), ra=_ra(word),
                        op2=word & 1, cycles=2, word=word)
    if ext == 150:
        return PPCInstr("isync", exec_nopish, word=word)
    if ext == 50:
        return PPCInstr("rfi", exec_rfi, cycles=10, word=word)
    if ext == 0:
        return PPCInstr("mcrf", exec_nopish, word=word)
    return PPCInstr("(illegal)", exec_illegal, word=word)


_X_FORMS = {
    0: ("cmpw", exec_cmpw, 1),
    32: ("cmplw", exec_cmplw, 1),
    4: ("tw", exec_tw, 1),
    266: ("add", exec_add, 1),
    40: ("subf", exec_subf, 1),
    104: ("neg", exec_neg, 1),
    138: ("adde", exec_adde, 1),
    202: ("addze", exec_addze, 1),
    26: ("cntlzw", exec_cntlzw, 1),
    954: ("extsb", exec_extsb, 1),
    922: ("extsh", exec_extsh, 1),
    235: ("mullw", exec_mullw, 1),
    491: ("divw", exec_divw, 1),
    459: ("divwu", exec_divwu, 1),
    28: ("and", exec_and, 1),
    444: ("or", exec_or, 1),
    316: ("xor", exec_xor, 1),
    476: ("nand", exec_nand, 1),
    124: ("nor", exec_nor, 1),
    24: ("slw", exec_slw, 1),
    536: ("srw", exec_srw, 1),
    792: ("sraw", exec_sraw, 1),
    824: ("srawi", exec_srawi, 1),
    23: ("lwzx", exec_lwzx, 3),
    151: ("stwx", exec_stwx, 2),
    87: ("lbzx", exec_lbzx, 3),
    215: ("stbx", exec_stbx, 2),
    279: ("lhzx", exec_lhzx, 3),
    343: ("lhax", exec_lhax, 3),
    407: ("sthx", exec_sthx, 2),
    339: ("mfspr", exec_mfspr, 3),
    467: ("mtspr", exec_mtspr, 3),
    83: ("mfmsr", exec_mfmsr, 3),
    146: ("mtmsr", exec_mtmsr, 4),
    19: ("mfcr", exec_mfcr, 1),
    598: ("sync", exec_nopish, 3),
    854: ("eieio", exec_nopish, 3),
    982: ("icbi", exec_nopish, 3),
    86: ("dcbf", exec_nopish, 3),
    470: ("dcbi", exec_nopish, 3),
}


def _build_31(word: int, addr: int) -> PPCInstr:
    ext = (word >> 1) & 0x3FF
    entry = _X_FORMS.get(ext)
    if entry is None:
        return PPCInstr("(illegal)", exec_illegal, word=word)
    name, execute, cycles = entry
    if execute in (exec_mfspr, exec_mtspr):
        return PPCInstr(name, execute, rt=_rt(word), imm=_spr_field(word),
                        cycles=cycles, word=word)
    if execute is exec_srawi:
        return PPCInstr(name, execute, rt=_rt(word), ra=_ra(word),
                        rb=_rb(word), cycles=cycles, word=word)
    if execute in (exec_cmpw, exec_cmplw):
        return PPCInstr(name, execute, ra=_ra(word), rb=_rb(word),
                        op2=(word >> 23) & 0x7, cycles=cycles, word=word)
    return PPCInstr(name, execute, rt=_rt(word), ra=_ra(word),
                    rb=_rb(word), cycles=cycles, word=word)


_PRIMARY: Dict[int, Callable] = {
    3: _build_twi,
    7: _mk_dform("mulli", exec_mulli, 3),
    8: _mk_dform("subfic", exec_subfic),
    10: _build_cmplwi,
    11: _build_cmpwi,
    12: _mk_dform("addic", exec_addic),
    14: _mk_dform("addi", exec_addi),
    15: _mk_dform("addis", exec_addis),
    16: _build_bc,
    17: _build_sc,
    18: _build_b,
    19: _build_19,
    21: _build_rlwinm,
    24: _mk_dform("ori", exec_ori, unsigned=True),
    25: _mk_dform("oris", exec_oris, unsigned=True),
    26: _mk_dform("xori", exec_xori, unsigned=True),
    27: _mk_dform("xoris", exec_xoris, unsigned=True),
    28: _mk_dform("andi.", exec_andi_dot, unsigned=True),
    29: _mk_dform("andis.", exec_andis_dot, unsigned=True),
    31: _build_31,
    32: _mk_dform("lwz", exec_lwz, 3),
    33: _mk_dform("lwzu", exec_lwzu, 3),
    34: _mk_dform("lbz", exec_lbz, 3),
    36: _mk_dform("stw", exec_stw, 2),
    37: _mk_dform("stwu", exec_stwu, 2),
    38: _mk_dform("stb", exec_stb, 2),
    40: _mk_dform("lhz", exec_lhz, 3),
    42: _mk_dform("lha", exec_lha, 3),
    44: _mk_dform("sth", exec_sth, 2),
    46: _mk_dform("lmw", exec_lmw, 4),
    47: _mk_dform("stmw", exec_stmw, 4),
}
