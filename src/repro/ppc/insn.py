"""Decoded-instruction representation for the G4-like core.

PowerPC instructions are exactly one 32-bit word; decoding never changes
stream alignment, which is the architectural root of the G4's behaviour
under code errors: a bit flip perturbs exactly one instruction, and most
perturbations land in unassigned encoding space (Illegal Instruction).
"""

from __future__ import annotations

from typing import Callable


class PPCInstr:
    """One decoded PowerPC instruction (subset)."""

    __slots__ = ("mnemonic", "execute", "rt", "ra", "rb", "imm", "op2",
                 "cycles", "word")

    def __init__(self, mnemonic: str,
                 execute: Callable[["object", "PPCInstr"], None],
                 rt: int = 0, ra: int = 0, rb: int = 0, imm: int = 0,
                 op2: int = 0, cycles: int = 1, word: int = 0) -> None:
        self.mnemonic = mnemonic
        self.execute = execute
        self.rt = rt
        self.ra = ra
        self.rb = rb
        self.imm = imm
        self.op2 = op2
        self.cycles = cycles
        self.word = word

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PPCInstr({self.mnemonic!r}, rt={self.rt}, ra={self.ra}, "
                f"rb={self.rb}, imm={self.imm:#x})")
