"""Structured PowerPC assembler used by the ``kcc`` PPC backend.

Same philosophy as :mod:`repro.x86.assembler`: a builder API producing
exactly the encodings the decoder understands, with local label fixups
(14-bit conditional and 24-bit unconditional branch displacements) and
linker relocations for cross-function ``bl`` and ``lis``/``ori`` address
materialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.ppc.registers import SPR_CTR, SPR_LR


class AssemblerError(Exception):
    pass


@dataclass
class Reloc:
    """An unresolved reference to an external symbol.

    ``kind`` is one of ``"rel24"`` (bl), ``"hi16"``, ``"lo16"``
    (lis/ori address materialization).
    """

    offset: int
    symbol: str
    kind: str


def dform(opcd: int, rt: int, ra: int, imm: int) -> int:
    return ((opcd & 0x3F) << 26) | ((rt & 0x1F) << 21) | \
        ((ra & 0x1F) << 16) | (imm & 0xFFFF)


def xform(opcd: int, rt: int, ra: int, rb: int, ext: int,
          rc: int = 0) -> int:
    return ((opcd & 0x3F) << 26) | ((rt & 0x1F) << 21) | \
        ((ra & 0x1F) << 16) | ((rb & 0x1F) << 11) | \
        ((ext & 0x3FF) << 1) | (rc & 1)


class PPCAssembler:
    """Accumulates encoded instruction words plus labels/relocations."""

    def __init__(self) -> None:
        self.words: List[int] = []
        self.labels: Dict[str, int] = {}
        self._fixups: List[Tuple[int, str, str]] = []   # index, label, kind
        self.relocs: List[Reloc] = []

    # -- plumbing ---------------------------------------------------------

    def emit(self, word: int) -> int:
        self.words.append(word & 0xFFFFFFFF)
        return len(self.words) - 1

    def label(self, name: str) -> None:
        if name in self.labels:
            raise AssemblerError(f"duplicate label {name}")
        self.labels[name] = len(self.words)

    def new_label(self, hint: str = "L") -> str:
        return f".{hint}{len(self.words)}_{len(self._fixups)}"

    @property
    def size(self) -> int:
        return len(self.words) * 4

    # -- arithmetic ---------------------------------------------------------

    def addi(self, rt: int, ra: int, imm: int) -> None:
        self.emit(dform(14, rt, ra, imm))

    def addis(self, rt: int, ra: int, imm: int) -> None:
        self.emit(dform(15, rt, ra, imm))

    def li(self, rt: int, imm: int) -> None:
        self.addi(rt, 0, imm)

    def lis(self, rt: int, imm: int) -> None:
        self.addis(rt, 0, imm)

    def mulli(self, rt: int, ra: int, imm: int) -> None:
        self.emit(dform(7, rt, ra, imm))

    def add(self, rt: int, ra: int, rb: int) -> None:
        self.emit(xform(31, rt, ra, rb, 266))

    def subf(self, rt: int, ra: int, rb: int) -> None:
        self.emit(xform(31, rt, ra, rb, 40))

    def neg(self, rt: int, ra: int) -> None:
        self.emit(xform(31, rt, ra, 0, 104))

    def mullw(self, rt: int, ra: int, rb: int) -> None:
        self.emit(xform(31, rt, ra, rb, 235))

    def divw(self, rt: int, ra: int, rb: int) -> None:
        self.emit(xform(31, rt, ra, rb, 491))

    def divwu(self, rt: int, ra: int, rb: int) -> None:
        self.emit(xform(31, rt, ra, rb, 459))

    # -- logic (note rs-in-rt-slot encoding for X-form logicals) -------------

    def and_(self, ra: int, rs: int, rb: int) -> None:
        self.emit(xform(31, rs, ra, rb, 28))

    def or_(self, ra: int, rs: int, rb: int) -> None:
        self.emit(xform(31, rs, ra, rb, 444))

    def mr(self, ra: int, rs: int) -> None:
        self.or_(ra, rs, rs)

    def xor_(self, ra: int, rs: int, rb: int) -> None:
        self.emit(xform(31, rs, ra, rb, 316))

    def nor(self, ra: int, rs: int, rb: int) -> None:
        self.emit(xform(31, rs, ra, rb, 124))

    def slw(self, ra: int, rs: int, rb: int) -> None:
        self.emit(xform(31, rs, ra, rb, 24))

    def srw(self, ra: int, rs: int, rb: int) -> None:
        self.emit(xform(31, rs, ra, rb, 536))

    def sraw(self, ra: int, rs: int, rb: int) -> None:
        self.emit(xform(31, rs, ra, rb, 792))

    def srawi(self, ra: int, rs: int, sh: int) -> None:
        self.emit(xform(31, rs, ra, sh, 824))

    def ori(self, ra: int, rs: int, imm: int) -> None:
        self.emit(dform(24, rs, ra, imm))

    def oris(self, ra: int, rs: int, imm: int) -> None:
        self.emit(dform(25, rs, ra, imm))

    def xori(self, ra: int, rs: int, imm: int) -> None:
        self.emit(dform(26, rs, ra, imm))

    def andi_dot(self, ra: int, rs: int, imm: int) -> None:
        self.emit(dform(28, rs, ra, imm))

    def rlwinm(self, ra: int, rs: int, sh: int, mb: int, me: int) -> None:
        word = ((21 & 0x3F) << 26) | ((rs & 0x1F) << 21) | \
            ((ra & 0x1F) << 16) | ((sh & 0x1F) << 11) | \
            ((mb & 0x1F) << 6) | ((me & 0x1F) << 1)
        self.emit(word)

    def nop(self) -> None:
        self.ori(0, 0, 0)

    # -- compare ---------------------------------------------------------------

    def cmpwi(self, ra: int, imm: int, crf: int = 0) -> None:
        self.emit(dform(11, crf << 2, ra, imm))

    def cmplwi(self, ra: int, imm: int, crf: int = 0) -> None:
        self.emit(dform(10, crf << 2, ra, imm))

    def cmpw(self, ra: int, rb: int, crf: int = 0) -> None:
        self.emit(xform(31, crf << 2, ra, rb, 0))

    def cmplw(self, ra: int, rb: int, crf: int = 0) -> None:
        self.emit(xform(31, crf << 2, ra, rb, 32))

    # -- memory ---------------------------------------------------------------

    def lwz(self, rt: int, d: int, ra: int) -> None:
        self.emit(dform(32, rt, ra, d))

    def lwzu(self, rt: int, d: int, ra: int) -> None:
        self.emit(dform(33, rt, ra, d))

    def lbz(self, rt: int, d: int, ra: int) -> None:
        self.emit(dform(34, rt, ra, d))

    def lhz(self, rt: int, d: int, ra: int) -> None:
        self.emit(dform(40, rt, ra, d))

    def lha(self, rt: int, d: int, ra: int) -> None:
        self.emit(dform(42, rt, ra, d))

    def stw(self, rs: int, d: int, ra: int) -> None:
        self.emit(dform(36, rs, ra, d))

    def stwu(self, rs: int, d: int, ra: int) -> None:
        self.emit(dform(37, rs, ra, d))

    def stb(self, rs: int, d: int, ra: int) -> None:
        self.emit(dform(38, rs, ra, d))

    def sth(self, rs: int, d: int, ra: int) -> None:
        self.emit(dform(44, rs, ra, d))

    def lmw(self, rt: int, d: int, ra: int) -> None:
        self.emit(dform(46, rt, ra, d))

    def stmw(self, rs: int, d: int, ra: int) -> None:
        self.emit(dform(47, rs, ra, d))

    def lwzx(self, rt: int, ra: int, rb: int) -> None:
        self.emit(xform(31, rt, ra, rb, 23))

    def stwx(self, rs: int, ra: int, rb: int) -> None:
        self.emit(xform(31, rs, ra, rb, 151))

    def lbzx(self, rt: int, ra: int, rb: int) -> None:
        self.emit(xform(31, rt, ra, rb, 87))

    def stbx(self, rs: int, ra: int, rb: int) -> None:
        self.emit(xform(31, rs, ra, rb, 215))

    def lhzx(self, rt: int, ra: int, rb: int) -> None:
        self.emit(xform(31, rt, ra, rb, 279))

    def sthx(self, rs: int, ra: int, rb: int) -> None:
        self.emit(xform(31, rs, ra, rb, 407))

    # -- branches ----------------------------------------------------------------

    def b_label(self, label: str) -> None:
        self._fixups.append((len(self.words), label, "rel24"))
        self.emit((18 << 26))

    def bl_sym(self, symbol: str) -> None:
        self.relocs.append(Reloc(len(self.words) * 4, symbol, "rel24"))
        self.emit((18 << 26) | 1)

    def bc_label(self, bo: int, bi: int, label: str) -> None:
        self._fixups.append((len(self.words), label, "rel14"))
        self.emit((16 << 26) | ((bo & 0x1F) << 21) | ((bi & 0x1F) << 16))

    def beq(self, label: str, crf: int = 0) -> None:
        self.bc_label(12, 4 * crf + 2, label)

    def bne(self, label: str, crf: int = 0) -> None:
        self.bc_label(4, 4 * crf + 2, label)

    def blt(self, label: str, crf: int = 0) -> None:
        self.bc_label(12, 4 * crf + 0, label)

    def bge(self, label: str, crf: int = 0) -> None:
        self.bc_label(4, 4 * crf + 0, label)

    def bgt(self, label: str, crf: int = 0) -> None:
        self.bc_label(12, 4 * crf + 1, label)

    def ble(self, label: str, crf: int = 0) -> None:
        self.bc_label(4, 4 * crf + 1, label)

    def blr(self) -> None:
        self.emit((19 << 26) | (20 << 21) | (16 << 1))

    def bctrl(self) -> None:
        self.emit((19 << 26) | (20 << 21) | (528 << 1) | 1)

    def bctr(self) -> None:
        self.emit((19 << 26) | (20 << 21) | (528 << 1))

    # -- SPR / system --------------------------------------------------------------

    def mfspr(self, rt: int, spr: int) -> None:
        swapped = ((spr & 0x1F) << 16) | (((spr >> 5) & 0x1F) << 11)
        self.emit((31 << 26) | ((rt & 0x1F) << 21) | swapped | (339 << 1))

    def mtspr(self, spr: int, rs: int) -> None:
        swapped = ((spr & 0x1F) << 16) | (((spr >> 5) & 0x1F) << 11)
        self.emit((31 << 26) | ((rs & 0x1F) << 21) | swapped | (467 << 1))

    def mflr(self, rt: int) -> None:
        self.mfspr(rt, SPR_LR)

    def mtlr(self, rs: int) -> None:
        self.mtspr(SPR_LR, rs)

    def mfctr(self, rt: int) -> None:
        self.mfspr(rt, SPR_CTR)

    def mtctr(self, rs: int) -> None:
        self.mtspr(SPR_CTR, rs)

    def mfmsr(self, rt: int) -> None:
        self.emit(xform(31, rt, 0, 0, 83))

    def mtmsr(self, rs: int) -> None:
        self.emit(xform(31, rs, 0, 0, 146))

    def sc(self) -> None:
        self.emit((17 << 26) | 2)

    def twi(self, to: int, ra: int, imm: int) -> None:
        self.emit(dform(3, to, ra, imm))

    def trap(self) -> None:
        """Unconditional trap — the kernel's BUG() on PowerPC."""
        self.emit(xform(31, 31, 0, 0, 4))    # tw 31,r0,r0

    def isync(self) -> None:
        self.emit((19 << 26) | (150 << 1))

    def sync(self) -> None:
        self.emit(xform(31, 0, 0, 0, 598))

    # -- address materialization -----------------------------------------------------

    def load_addr_sym(self, rt: int, symbol: str) -> None:
        """lis rt, sym@hi ; ori rt, rt, sym@lo  (linker-resolved)."""
        self.relocs.append(Reloc(len(self.words) * 4, symbol, "hi16"))
        self.lis(rt, 0)
        self.relocs.append(Reloc(len(self.words) * 4, symbol, "lo16"))
        self.ori(rt, rt, 0)

    def load_imm32(self, rt: int, value: int) -> None:
        value &= 0xFFFFFFFF
        high = (value >> 16) & 0xFFFF
        low = value & 0xFFFF
        if high:
            self.lis(rt, high)
            if low:
                self.ori(rt, rt, low)
        elif low & 0x8000:
            self.li(rt, 0)
            self.ori(rt, rt, low)
        else:
            self.li(rt, low)

    # -- finalization -------------------------------------------------------------------

    def finish(self) -> bytes:
        """Resolve label fixups and return big-endian code bytes."""
        for index, label, kind in self._fixups:
            if label not in self.labels:
                raise AssemblerError(f"undefined label {label}")
            rel = (self.labels[label] - index) * 4
            word = self.words[index]
            if kind == "rel24":
                if not -(1 << 25) <= rel < (1 << 25):
                    raise AssemblerError("rel24 overflow")
                word |= rel & 0x03FFFFFC
            else:
                if not -(1 << 15) <= rel < (1 << 15):
                    raise AssemblerError("rel14 overflow")
                word |= rel & 0xFFFC
            self.words[index] = word
        self._fixups.clear()
        out = bytearray()
        for word in self.words:
            out.extend(word.to_bytes(4, "big"))
        return bytes(out)
