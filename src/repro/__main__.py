"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``study``
    Run the full eight-campaign study and print every table and figure.
``campaign``
    Run a single campaign and print its row, crash causes, latency.
``profile``
    Print the kernel usage profile the code campaign targets.
``disasm``
    Disassemble a kernel function on either architecture.
``report``
    Regenerate the EXPERIMENTS.md-style paper-vs-measured report.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.figures import render_distribution
from repro.analysis.latency import BUCKET_LABELS, latency_percentages
from repro.analysis.tables import build_row, render_table
from repro.core import Study, StudyConfig
from repro.injection.campaign import run_campaign
from repro.injection.outcomes import CampaignKind


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--arch", choices=["x86", "ppc"],
                        default="x86",
                        help="target platform (default: x86/P4)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ops", type=int, default=40,
                        help="monitored workload window (operations)")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}")
    return value


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=_positive_int, default=1,
        help="campaign worker processes (default 1 = serial; any "
        "value gives bit-identical results)")


def cmd_study(args: argparse.Namespace) -> int:
    config = StudyConfig(seed=args.seed, scale=args.scale,
                         ops=args.ops, workers=args.workers)
    study = Study(config)
    for arch in ("x86", "ppc"):
        for kind in CampaignKind:
            count = config.campaign_count(arch, kind)
            print(f"running {arch}/{kind.value} ({count} injections)...",
                  file=sys.stderr)
            study.run_campaign(arch, kind)
    print(study.render_all())
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    kind = CampaignKind(args.kind)
    outcome = run_campaign(args.arch, kind, count=args.count,
                           seed=args.seed, ops=args.ops,
                           workers=args.workers)
    row = build_row(kind, outcome.results)
    print(render_table([row],
                       "Pentium 4" if args.arch == "x86" else "PPC G4"))
    print()
    print(render_distribution(outcome.results,
                              f"{kind.value} crash causes", args.arch))
    print()
    percentages = latency_percentages(outcome.results)
    print("latency:  " + "  ".join(
        f"{label}:{percentages[label]:.0f}%" for label in BUCKET_LABELS
        if percentages[label]))
    if kind is CampaignKind.CODE:
        from repro.analysis.sensitivity import render_sensitivity
        from repro.injection.campaign import CampaignContext
        image = CampaignContext.get(args.arch, args.seed,
                                    args.ops).base_machine.image
        print()
        print(render_sensitivity(outcome.results, image,
                                 f"{args.arch} code campaign"))
    if args.json:
        from repro.analysis.export import dump_results
        count = dump_results(outcome.results, args.json)
        print(f"\nwrote {count} records to {args.json}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.workload.profiler import profile_kernel
    profile = profile_kernel(args.arch, seed=args.seed, ops=args.ops)
    total = sum(profile.counts.values()) or 1
    print(f"kernel usage profile ({args.arch}, {profile.samples} "
          f"samples):")
    accumulated = 0.0
    for name, count in sorted(profile.counts.items(),
                              key=lambda kv: -kv[1]):
        share = 100.0 * count / total
        accumulated += share
        print(f"  {name:<24} {share:5.1f}%   (cum {accumulated:5.1f}%)")
        if accumulated >= 99.5:
            break
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    from repro.kernel.build import build_kernel
    image = build_kernel(args.arch)
    info = image.functions.get(args.function)
    if info is None:
        print(f"no kernel function named {args.function!r}; "
              f"try one of: {', '.join(sorted(image.functions)[:12])} ...",
              file=sys.stderr)
        return 1
    code = image.text_bytes[info.addr - image.text_base:
                            info.addr - image.text_base + info.size]
    if args.arch == "x86":
        from repro.x86.disasm import disassemble_range
        lines = disassemble_range(code, info.addr, count=10_000)
    else:
        from repro.ppc.disasm import disassemble_range
        lines = disassemble_range(code, info.addr, count=10_000)
    print(f"{args.function} [{info.subsystem}] @ {info.addr:#010x}, "
          f"{info.size} bytes:")
    for line in lines:
        print("  " + line)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from examples.generate_experiments_report import main as report_main
    report_main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DSN 2004 kernel error-sensitivity reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    study = sub.add_parser("study", help="run the full study")
    study.add_argument("--scale", type=float, default=0.01,
                       help="fraction of the paper's campaign sizes")
    study.add_argument("--seed", type=int, default=0)
    study.add_argument("--ops", type=int, default=40)
    _add_workers(study)
    study.set_defaults(func=cmd_study)

    campaign = sub.add_parser("campaign", help="run one campaign")
    _add_common(campaign)
    campaign.add_argument("--kind", required=True,
                          choices=[kind.value for kind in CampaignKind])
    campaign.add_argument("-n", "--count", type=int, default=100)
    campaign.add_argument("--json", metavar="PATH",
                          help="also dump results as JSON lines")
    _add_workers(campaign)
    campaign.set_defaults(func=cmd_campaign)

    profile = sub.add_parser("profile", help="kernel usage profile")
    _add_common(profile)
    profile.set_defaults(func=cmd_profile)

    disasm = sub.add_parser("disasm", help="disassemble a kernel fn")
    _add_common(disasm)
    disasm.add_argument("function")
    disasm.set_defaults(func=cmd_disasm)

    report = sub.add_parser("report",
                            help="paper-vs-measured report (stdout)")
    report.set_defaults(func=cmd_report)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
