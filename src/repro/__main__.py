"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``study``
    Run the full eight-campaign study and print every table and figure.
``campaign``
    Run a single campaign and print its row, crash causes, latency.
``profile``
    Print the kernel usage profile the code campaign targets.
``disasm``
    Disassemble a kernel function on either architecture.
``report``
    Regenerate the EXPERIMENTS.md-style paper-vs-measured report.
``store``
    Inspect a durable result store: ``ls``, ``verify``, ``export``.
``replay``
    Deterministically re-execute one journaled experiment with the
    flight recorder armed, verify it against the journal, and
    optionally dump the trace (``--trace``), diff against the clean
    twin (``--diff``), or print the three-stage breakdown
    (``--stages``).
``faults``
    List the registered fault models (``repro faults list``): name,
    multiplicity, spatial shape, retrigger schedule, targeted
    structures, and the spec digest joining campaign identity.
``static``
    Run the static error-sensitivity analyzer (CFG + liveness +
    encoding-corruption prediction) over one or both kernel images;
    ``--validate N`` also runs an N-injection dynamic code campaign
    and prints the predicted-vs-measured confusion matrix.

``serve``
    Run the campaign service daemon: an asyncio HTTP/JSON API that
    queues submitted campaigns per tenant (FIFO + priority, round-
    robin fairness), runs them on the sharded engine through the
    durable store, streams progress (NDJSON/SSE), and serves stored
    results to concurrent readers.
``submit`` / ``jobs`` / ``cancel``
    Thin clients for a running service (``--url``).

``campaign`` and ``study`` take ``--store DIR`` to journal results
durably as they complete, ``--resume`` to continue (or top up) a
stored campaign, and ``--progress`` for periodic injected/total lines.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.figures import render_distribution
from repro.analysis.latency import BUCKET_LABELS, latency_percentages
from repro.analysis.tables import build_row, render_table
from repro.core import Study, StudyConfig
from repro.injection.campaign import run_campaign
from repro.injection.outcomes import CampaignKind


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--arch", choices=["x86", "ppc"],
                        default="x86",
                        help="target platform (default: x86/P4)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ops", type=int, default=40,
                        help="monitored workload window (operations)")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}")
    return value


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=_positive_int, default=1,
        help="campaign worker processes (default 1 = serial; any "
        "value gives bit-identical results)")


def _add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", metavar="DIR",
        help="durable result store: journal every result as it "
        "completes (crash-safe, resumable)")
    parser.add_argument(
        "--resume", action="store_true",
        help="continue or top up a stored campaign (requires --store)")
    parser.add_argument(
        "--progress", action="store_true",
        help="print periodic injected/total progress lines")


def _progress_printer(label: str = ""):
    """A ``Campaign.run(progress_callback=)`` batch callback printing
    ~20 periodic ``done/total`` lines (batches are ignored — the
    service consumes them; the CLI only prints the tick)."""
    state = {"last": 0}

    def callback(done: int, total: int, batch=None) -> None:
        step = max(1, total // 20)
        if done >= total or done - state["last"] >= step:
            state["last"] = done
            print(f"{label}{done}/{total} injected", file=sys.stderr)

    return callback


def _add_prune(parser: argparse.ArgumentParser) -> None:
    from repro.injection.campaign import PRUNE_POLICIES
    parser.add_argument(
        "--prune", choices=list(PRUNE_POLICIES), default=None,
        help="redraw code targets the static analyzer proves inert: "
        "'dead' skips decode-identical flips and unreachable code, "
        "'taint' additionally skips corruptions the taint engine "
        "proves die before reaching any sink; code campaigns only")
    parser.add_argument(
        "--prune-dead", action="store_true",
        help="shorthand for --prune=dead")


def _resolve_prune(args: argparse.Namespace) -> str:
    if args.prune is not None:
        if args.prune_dead and args.prune != "dead":
            raise SystemExit(
                f"--prune-dead conflicts with --prune={args.prune}")
        return args.prune
    return "dead" if args.prune_dead else "none"


def _add_exec_mode(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--exec-mode", choices=["step", "block"], default="block",
        help="execution core: 'block' runs compiled superblocks "
        "(default; bit-identical results, much faster), 'step' is "
        "the plain interpreter")


def _add_fault_model(parser: argparse.ArgumentParser) -> None:
    from repro.faults import DEFAULT_MODEL, available_models
    parser.add_argument(
        "--fault-model", choices=list(available_models()),
        default=DEFAULT_MODEL, dest="fault_model",
        help="registered fault model to inject (default "
        f"'{DEFAULT_MODEL}', the paper's single-shot single-bit "
        "flip; see `repro faults list`)")


def _add_checkpoints(parser: argparse.ArgumentParser) -> None:
    from repro.checkpoint.ladder import DEFAULT_CHECKPOINTS
    parser.add_argument(
        "--checkpoints", type=int, default=DEFAULT_CHECKPOINTS,
        metavar="N",
        help="clean-run snapshots to dispatch experiments from "
        f"(default {DEFAULT_CHECKPOINTS}; 0 disables; bit-identical "
        "results either way, skipping the pre-trigger replay)")


def _check_store_args(args: argparse.Namespace) -> None:
    if args.resume and not args.store:
        raise SystemExit("--resume requires --store DIR")


def cmd_study(args: argparse.Namespace) -> int:
    _check_store_args(args)
    config = StudyConfig(seed=args.seed, scale=args.scale,
                         ops=args.ops, workers=args.workers,
                         store=args.store, resume=args.resume,
                         prune=_resolve_prune(args),
                         exec_mode=args.exec_mode,
                         checkpoints=args.checkpoints,
                         fault_model=args.fault_model)
    study = Study(config)
    for arch in ("x86", "ppc"):
        for kind in CampaignKind:
            count = config.campaign_count(arch, kind)
            print(f"running {arch}/{kind.value} ({count} injections)...",
                  file=sys.stderr)
            progress = _progress_printer(f"  {arch}/{kind.value}: ") \
                if args.progress else None
            study.run_campaign(arch, kind, progress_callback=progress)
    print(study.render_all())
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    _check_store_args(args)
    kind = CampaignKind(args.kind)
    prune = _resolve_prune(args)
    if prune != "none" and kind is not CampaignKind.CODE:
        raise SystemExit(f"--prune={prune} requires --kind code")
    from repro.faults import model_applies
    if not model_applies(args.fault_model, kind.value):
        raise SystemExit(
            f"--fault-model={args.fault_model} does not apply to "
            f"--kind {kind.value}")
    outcome = run_campaign(args.arch, kind, count=args.count,
                           seed=args.seed, ops=args.ops,
                           workers=args.workers,
                           store=args.store, resume=args.resume,
                           progress_callback=_progress_printer()
                           if args.progress else None,
                           prune=prune,
                           exec_mode=args.exec_mode,
                           checkpoints=args.checkpoints,
                           fault_model=args.fault_model)
    if outcome.prune_escaped:
        print(f"prune={prune} conservatively escaped: fault model "
              f"{args.fault_model!r} flips multiple bits and "
              f"single-bit inertness proofs do not compose",
              file=sys.stderr)
    elif prune != "none":
        print(f"prune={prune}: {outcome.pruned_draws} draw(s) "
              f"rejected and redrawn", file=sys.stderr)
    row = build_row(kind, outcome.results)
    print(render_table([row],
                       "Pentium 4" if args.arch == "x86" else "PPC G4"))
    print()
    print(render_distribution(outcome.results,
                              f"{kind.value} crash causes", args.arch))
    print()
    percentages = latency_percentages(outcome.results)
    print("latency:  " + "  ".join(
        f"{label}:{percentages[label]:.0f}%" for label in BUCKET_LABELS
        if percentages[label]))
    if kind is CampaignKind.CODE:
        from repro.analysis.sensitivity import render_sensitivity
        from repro.injection.campaign import CampaignContext
        image = CampaignContext.get(args.arch, args.seed,
                                    args.ops).base_machine.image
        print()
        print(render_sensitivity(outcome.results, image,
                                 f"{args.arch} code campaign"))
    if args.json:
        from repro.analysis.export import dump_results
        count = dump_results(outcome.results, args.json)
        print(f"\nwrote {count} records to {args.json}")
    return 0


def cmd_faults_list(args: argparse.Namespace) -> int:
    from repro.faults import available_models, get_model
    print(f"{'model':<14} {'digest':<14} description")
    for name in available_models():
        model = get_model(name)
        spec = model.spec
        line = f"{name:<14} {spec.digest()[:12]:<14} {spec.describe()}"
        if name == "single-bit":
            line += "  [default]"
        print(line)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.workload.profiler import profile_kernel
    profile = profile_kernel(args.arch, seed=args.seed, ops=args.ops)
    total = sum(profile.counts.values()) or 1
    print(f"kernel usage profile ({args.arch}, {profile.samples} "
          f"samples):")
    accumulated = 0.0
    for name, count in sorted(profile.counts.items(),
                              key=lambda kv: -kv[1]):
        share = 100.0 * count / total
        accumulated += share
        print(f"  {name:<24} {share:5.1f}%   (cum {accumulated:5.1f}%)")
        if accumulated >= 99.5:
            break
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    from repro.kernel.build import build_kernel
    image = build_kernel(args.arch)
    info = image.functions.get(args.function)
    if info is None:
        print(f"no kernel function named {args.function!r}; "
              f"try one of: {', '.join(sorted(image.functions)[:12])} ...",
              file=sys.stderr)
        return 1
    code = image.text_bytes[info.addr - image.text_base:
                            info.addr - image.text_base + info.size]
    if args.arch == "x86":
        from repro.x86.disasm import disassemble_range
        lines = disassemble_range(code, info.addr, count=10_000)
    else:
        from repro.ppc.disasm import disassemble_range
        lines = disassemble_range(code, info.addr, count=10_000)
    print(f"{args.function} [{info.subsystem}] @ {info.addr:#010x}, "
          f"{info.size} bytes:")
    for line in lines:
        print("  " + line)
    return 0


def cmd_static(args: argparse.Namespace) -> int:
    from repro.static import analyze_kernel
    from repro.static.report import compare_rates
    arches = ("x86", "ppc") if args.arch == "both" else (args.arch,)
    reports = []
    for arch in arches:
        print(f"analyzing {arch} kernel image...", file=sys.stderr)
        report = analyze_kernel(arch, taint=args.taint)
        reports.append(report)
        print(report.render())
        print(f"  histogram digest: {report.digest()}")
        print()
    if len(reports) > 1:
        print(compare_rates(reports))
    if args.validate:
        from repro.analysis.validate_static import (
            distance_latency_probe, validate_code_campaign,
        )
        for report in reports:
            print(f"\nrunning {args.validate}-injection dynamic code "
                  f"campaign on {report.arch}...", file=sys.stderr)
            outcome = run_campaign(
                report.arch, CampaignKind.CODE, count=args.validate,
                seed=args.seed, ops=args.ops, workers=args.workers,
                progress=_progress_printer() if args.progress
                else None)
            validation = validate_code_campaign(outcome.results,
                                                report)
            print(validation.render())
            if args.taint:
                print(f"probing distance-vs-latency agreement on "
                      f"{report.arch} (traced)...", file=sys.stderr)
                agreement = distance_latency_probe(
                    report.arch, seed=args.seed, ops=args.ops,
                    per_distance=2, max_distance=8)
                print(agreement.render())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from examples.generate_experiments_report import main as report_main
    report_main()
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.trace.dissect import (
        dissect_traces, render_dissection,
    )
    from repro.trace.replay import ReplayDivergence, Replayer
    try:
        replayer = Replayer(args.store, args.campaign)
        outcome = replayer.replay(args.index, mode="full")
    except ReplayDivergence as exc:
        print(f"DIVERGED: {exc}", file=sys.stderr)
        return 1
    result = outcome.replayed
    print(f"{args.campaign}[{args.index}]: {result.outcome.value}"
          + (f" ({result.cause.value})" if result.cause else "")
          + (f", latency {result.latency} cycles"
             if result.latency is not None else "")
          + " — matches journal")
    if args.trace:
        count = outcome.recorder.write_jsonl(args.trace)
        print(f"wrote {count} trace events to {args.trace}")
    wants_dissection = args.diff or args.stages
    if wants_dissection and outcome.spec is None:
        print("experiment was screened (never ran a machine): "
              "nothing to dissect")
        return 0
    if wants_dissection:
        _twin, twin_recorder = replayer.clean_twin(args.index,
                                                   mode="full")
        dissection = dissect_traces(outcome.recorder.events,
                                    twin_recorder.events,
                                    result=result,
                                    arch=replayer.config.arch)
        if args.diff:
            print()
            print(render_dissection(dissection))
        if args.stages:
            print()
            if dissection.stages is None:
                print("no crash in the trace: no stages to report")
            else:
                b = dissection.stages
                print(f"three-stage breakdown ({replayer.config.arch}):")
                print(f"  stage 1 (to exception):      {b.stage1:>12}")
                print(f"  stage 2 (hardware exception):{b.stage2:>12}")
                print(f"  stage 3 (software handler):  {b.stage3:>12}")
                print(f"  total (== latency):          {b.total:>12}")
    return 0


def _store_errors(handler):
    """Store subcommands: a missing or corrupt store is exit 1 with a
    one-line message on stderr, never a traceback."""
    import functools

    @functools.wraps(handler)
    def wrapped(args: argparse.Namespace) -> int:
        from repro.store import (
            JournalCorruption, ManifestError, StoreError,
        )
        try:
            return handler(args)
        except (StoreError, ManifestError, JournalCorruption) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    return wrapped


@_store_errors
def cmd_store_ls(args: argparse.Namespace) -> int:
    from repro.store import CampaignStore
    store = CampaignStore(args.dir, create=False)
    ids = store.campaign_ids()
    if not ids:
        print(f"no campaigns in {args.dir}")
        return 0
    print(f"{'campaign':<34} {'arch':<5} {'kind':<9} {'count':>7} "
          f"{'done':>7}  code-version")
    for campaign_id, manifest in zip(ids, store.campaigns()):
        done = len(store.results(campaign_id))
        print(f"{campaign_id:<34} {manifest.arch:<5} "
              f"{manifest.kind:<9} {manifest.count:>7} {done:>7}  "
              f"{manifest.code_version}")
    return 0


@_store_errors
def cmd_store_verify(args: argparse.Namespace) -> int:
    from repro.store import CampaignStore
    store = CampaignStore(args.dir, create=False)
    ids = [args.campaign] if args.campaign else store.campaign_ids()
    status = 0
    for campaign_id in ids:
        report = store.verify(campaign_id)
        if report.ok:
            print(f"{campaign_id}: ok ({report.records} records)")
        else:
            status = 1
            print(f"{campaign_id}: {len(report.problems)} problem(s)")
            for problem in report.problems:
                print(f"  - {problem}")
    return status


@_store_errors
def cmd_store_export(args: argparse.Namespace) -> int:
    from repro.store import CampaignStore
    store = CampaignStore(args.dir, create=False)
    count = store.export(args.campaign, args.output)
    print(f"wrote {count} records to {args.output}")
    return 0


def _service_client(args):
    from repro.service.client import ServiceClient
    return ServiceClient(args.url)


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.daemon import run_daemon
    return run_daemon(store=args.store, workers=args.workers,
                      host=args.host, port=args.port)


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError
    prune = _resolve_prune(args)
    if prune != "none" and args.kind != "code":
        raise SystemExit(f"--prune={prune} requires --kind code")
    client = _service_client(args)
    config = {"arch": args.arch, "kind": args.kind,
              "count": args.count, "seed": args.seed, "ops": args.ops,
              "exec_mode": args.exec_mode,
              "checkpoints": args.checkpoints,
              "prune": prune,
              "fault_model": args.fault_model}
    try:
        out = client.submit(config, tenant=args.tenant,
                            priority=args.priority,
                            workers=args.workers)
    except (OSError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    job = out["job"]
    note = " (deduped onto existing job)" if out.get("deduped") else ""
    print(f"{job['id']} {job['state']}{note}")
    if not args.wait:
        return 0

    def on_event(event):
        if event.get("event") == "progress":
            print(f"  {event['done']}/{event['total']} injected",
                  file=sys.stderr)

    try:
        final = client.wait(job["id"], timeout=args.timeout,
                            on_event=on_event)
    except (OSError, ServiceError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    line = f"{final['id']} {final['state']}"
    if final.get("digest"):
        line += f" digest={final['digest']}"
    if final.get("error"):
        line += f" error={final['error']}"
    print(line)
    return 0 if final["state"] == "done" else 1


def cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError
    try:
        views = _service_client(args).jobs(tenant=args.tenant,
                                           state=args.state)
    except (OSError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not views:
        print("no jobs")
        return 0
    print(f"{'job':<12} {'tenant':<12} {'state':<10} "
          f"{'progress':>12}  digest")
    for view in views:
        progress = f"{view['done']}/{view['total']}" \
            if view["total"] else "-"
        digest = (view.get("digest") or "")[:16]
        print(f"{view['id']:<12} {view['tenant']:<12} "
              f"{view['state']:<10} {progress:>12}  {digest}")
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError
    try:
        job = _service_client(args).cancel(args.job)
    except (OSError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{job['id']} {job['state']}")
    return 0


def _add_url(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--url", default="http://127.0.0.1:8321",
        help="campaign service base URL "
        "(default http://127.0.0.1:8321)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DSN 2004 kernel error-sensitivity reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    study = sub.add_parser("study", help="run the full study")
    study.add_argument("--scale", type=float, default=0.01,
                       help="fraction of the paper's campaign sizes")
    study.add_argument("--seed", type=int, default=0)
    study.add_argument("--ops", type=int, default=40)
    _add_workers(study)
    _add_store(study)
    _add_prune(study)
    _add_exec_mode(study)
    _add_checkpoints(study)
    _add_fault_model(study)
    study.set_defaults(func=cmd_study)

    campaign = sub.add_parser("campaign", help="run one campaign")
    _add_common(campaign)
    campaign.add_argument("--kind", required=True,
                          choices=[kind.value for kind in CampaignKind])
    campaign.add_argument("-n", "--count", type=int, default=100)
    campaign.add_argument("--json", metavar="PATH",
                          help="also dump results as JSON lines")
    _add_workers(campaign)
    _add_store(campaign)
    _add_prune(campaign)
    _add_exec_mode(campaign)
    _add_checkpoints(campaign)
    _add_fault_model(campaign)
    campaign.set_defaults(func=cmd_campaign)

    store = sub.add_parser("store",
                           help="inspect a durable result store")
    store_sub = store.add_subparsers(dest="action", required=True)
    store_ls = store_sub.add_parser("ls", help="list campaigns")
    store_ls.add_argument("dir")
    store_ls.set_defaults(func=cmd_store_ls)
    store_verify = store_sub.add_parser(
        "verify", help="validate manifests, checksums, coverage")
    store_verify.add_argument("dir")
    store_verify.add_argument("--campaign", metavar="ID",
                              help="verify one campaign only")
    store_verify.set_defaults(func=cmd_store_verify)
    store_export = store_sub.add_parser(
        "export", help="dump one campaign as plain result JSONL")
    store_export.add_argument("dir")
    store_export.add_argument("campaign", metavar="ID")
    store_export.add_argument("output", metavar="OUT.jsonl")
    store_export.set_defaults(func=cmd_store_export)

    serve = sub.add_parser(
        "serve", help="run the campaign service daemon")
    serve.add_argument("--store", metavar="DIR", required=True,
                       help="durable result store the service "
                       "schedules into (created if missing)")
    serve.add_argument("--workers", type=_positive_int, default=2,
                       help="total worker slots; each job occupies "
                       "its requested worker count (default 2)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321,
                       help="listen port (0 = OS-assigned)")
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a campaign to a running service")
    _add_common(submit)
    submit.add_argument("--kind", required=True,
                        choices=[kind.value for kind in CampaignKind])
    submit.add_argument("-n", "--count", type=_positive_int,
                        default=100)
    submit.add_argument("--tenant", default="default",
                        help="tenant name for fair queueing")
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs sooner within the tenant")
    submit.add_argument("--workers", type=_positive_int, default=1,
                        help="worker slots (shard processes) the job "
                        "requests")
    submit.add_argument("--wait", action="store_true",
                        help="stream progress and block until the "
                        "job finishes")
    submit.add_argument("--timeout", type=float, default=3600.0,
                        help="--wait timeout in seconds")
    _add_prune(submit)
    _add_exec_mode(submit)
    _add_checkpoints(submit)
    _add_fault_model(submit)
    _add_url(submit)
    submit.set_defaults(func=cmd_submit)

    jobs = sub.add_parser("jobs", help="list service jobs")
    jobs.add_argument("--tenant", help="filter by tenant")
    jobs.add_argument("--state",
                      choices=["queued", "running", "done", "failed",
                               "cancelled"],
                      help="filter by state")
    _add_url(jobs)
    jobs.set_defaults(func=cmd_jobs)

    cancel = sub.add_parser("cancel", help="cancel a service job")
    cancel.add_argument("job", metavar="JOB_ID")
    _add_url(cancel)
    cancel.set_defaults(func=cmd_cancel)

    replay = sub.add_parser(
        "replay", help="re-execute one journaled experiment, traced")
    replay.add_argument("store", metavar="STORE",
                        help="store directory the campaign lives in")
    replay.add_argument("campaign", metavar="CAMPAIGN",
                        help="campaign id (see `store ls`)")
    replay.add_argument("index", type=int, metavar="INDEX",
                        help="global experiment index")
    replay.add_argument("--trace", metavar="OUT.jsonl",
                        help="dump the full trace as JSONL")
    replay.add_argument("--diff", action="store_true",
                        help="diff against the clean twin: infection "
                        "set and propagation chain")
    replay.add_argument("--stages", action="store_true",
                        help="print the three-stage cycles-to-crash "
                        "breakdown")
    replay.set_defaults(func=cmd_replay)

    faults = sub.add_parser("faults",
                            help="inspect registered fault models")
    faults_sub = faults.add_subparsers(dest="action", required=True)
    faults_list = faults_sub.add_parser(
        "list", help="list registered fault models")
    faults_list.set_defaults(func=cmd_faults_list)

    profile = sub.add_parser("profile", help="kernel usage profile")
    _add_common(profile)
    profile.set_defaults(func=cmd_profile)

    disasm = sub.add_parser("disasm", help="disassemble a kernel fn")
    _add_common(disasm)
    disasm.add_argument("function")
    disasm.set_defaults(func=cmd_disasm)

    report = sub.add_parser("report",
                            help="paper-vs-measured report (stdout)")
    report.set_defaults(func=cmd_report)

    static = sub.add_parser(
        "static", help="static error-sensitivity analysis")
    static.add_argument("--arch", choices=["x86", "ppc", "both"],
                        default="both")
    static.add_argument("--seed", type=int, default=0)
    static.add_argument("--ops", type=int, default=48)
    static.add_argument(
        "--taint", action="store_true",
        help="run the interprocedural taint engine: per-bit "
        "propagation verdicts (sink/dead/escape), distance-to-sink "
        "bounds, and taint-proven-masked bits (--prune=taint)")
    static.add_argument(
        "--validate", type=_positive_int, metavar="N",
        help="also run an N-injection dynamic code campaign per arch "
        "and print the predicted-vs-measured confusion matrix "
        "(with --taint: plus the distance-vs-latency agreement "
        "check)")
    static.add_argument("--progress", action="store_true",
                        help="print periodic injected/total lines")
    _add_workers(static)
    static.set_defaults(func=cmd_static)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
