"""Build the kernel: concatenate DSL sources, analyze, link per arch.

Source order matters for parse-time constant resolution and mirrors the
link order of a real kernel build.  Each function is tagged with the
subsystem its source file represents so that crash dumps and the
profiler can attribute activity the way the paper does ("the mm
subsystem", "the network subsystem", ...).
"""

from __future__ import annotations

import functools
from pathlib import Path
from typing import Dict, Tuple

from repro.kcc import analyze, build_image, parse
from repro.kcc.ast import Program
from repro.kcc.linker import KernelImage

#: concatenation order; (file stem, subsystem tag)
SOURCE_ORDER: Tuple[Tuple[str, str], ...] = (
    ("lib", "lib"),
    ("spinlock", "arch"),
    ("tables", "lib"),
    ("sched", "kernel"),
    ("mm", "mm"),
    ("fs", "fs"),
    ("dcache", "fs"),
    ("net", "net"),
    ("ipc", "ipc"),
    ("syscall", "kernel"),
)

_SOURCE_DIR = Path(__file__).parent / "source"


def kernel_source() -> str:
    """The full concatenated kernel DSL source."""
    parts = []
    for stem, _tag in SOURCE_ORDER:
        path = _SOURCE_DIR / f"{stem}.kc"
        parts.append(f"// ==== {stem}.kc ====\n" + path.read_text())
    return "\n".join(parts)


def _subsystem_map(program: Program) -> Dict[str, str]:
    """Map each function to its subsystem by re-parsing per file."""
    mapping: Dict[str, str] = {}
    for stem, tag in SOURCE_ORDER:
        path = _SOURCE_DIR / f"{stem}.kc"
        text = path.read_text()
        for line in text.splitlines():
            stripped = line.strip()
            if stripped.startswith("fn "):
                name = stripped[3:].split("(", 1)[0].strip()
                mapping[name] = tag
    return mapping


@functools.lru_cache(maxsize=None)
def kernel_program() -> Program:
    """Parse and analyze the kernel once per process."""
    return analyze(parse(kernel_source()))


#: pools that a real kernel allocates dynamically (page frames, block
#: device contents, pipe pages) — placed outside .data so the data
#: campaign samples genuine kernel data, as the paper's did
HEAP_GLOBALS = frozenset({"mem_pool", "ramdisk", "buffer_data",
                          "pipe_buf"})


@functools.lru_cache(maxsize=4)
def build_kernel(arch: str) -> KernelImage:
    """Compile and link the kernel for ``"x86"`` or ``"ppc"``.

    Cached: images are immutable; the machine layer copies the bytes
    into each fresh machine's memory.
    """
    program = kernel_program()
    return build_image(program, arch,
                       heap_globals=HEAP_GLOBALS,
                       subsystem_of=_subsystem_map(program))
