"""The miniature Linux-like kernel and its build machinery.

The kernel proper is written once in the kcc DSL (``source/*.kc``) and
compiled for both target architectures by :func:`repro.kernel.build.
build_kernel`.  The subsystem split mirrors the kernel tree the paper
profiles: ``lib``, ``spinlock`` (arch), ``sched`` (kernel/), ``mm``,
``fs``, ``net``, ``ipc``, and the syscall table.
"""

from repro.kernel.build import build_kernel, kernel_program, kernel_source
from repro.kernel.abi import Syscall, SYSCALL_NUMBERS

__all__ = ["build_kernel", "kernel_program", "kernel_source",
           "Syscall", "SYSCALL_NUMBERS"]
