"""Python-side mirror of the kernel ABI.

Everything the machine layer and the workload need to know about the
kernel's calling surface lives here; ``tests/test_kernel_abi.py``
asserts these values against the constants parsed from the DSL source,
so the two can never drift apart silently.
"""

from __future__ import annotations

import enum


class Syscall(enum.IntEnum):
    """Syscall numbers (must match ``syscall.kc``)."""

    GETPID = 0
    SCHED_YIELD = 1
    NANOSLEEP = 2
    BRK = 3
    OPEN = 4
    CLOSE = 5
    READ = 6
    WRITE = 7
    LSEEK = 8
    FSYNC = 9
    PIPE_WRITE = 10
    PIPE_READ = 11
    SEND = 12
    RECV = 13
    OPEN_PATH = 14


SYSCALL_NUMBERS = {f"SYS_{syscall.name}": int(syscall)
                   for syscall in Syscall}

#: task_struct.state values (must match ``sched.kc``)
TASK_RUNNING = 0
TASK_INTERRUPTIBLE = 1
TASK_UNINTERRUPTIBLE = 2
TASK_STOPPED = 8
TASK_UNUSED = 255

NR_TASKS = 8
NR_SYSCALLS = 16

#: spinlock magic (must match ``spinlock.kc``; the paper's Figure 13
#: value)
SPINLOCK_MAGIC = 0xDEAD4EAD

#: error returns (two's complement negatives, as the kernel returns)
ENOSYS = 0xFFFFFFDA
EBADF = 0xFFFFFFF7
EINVAL = 0xFFFFFFEA

#: kernel entry points the machine layer calls directly
ENTRY_FUNCTIONS = (
    "kernel_init", "do_syscall", "timer_tick", "schedule",
    "task_create", "task_exit", "wake_up_process",
    "kupdate", "kjournald",
)
