"""Trace event taxonomy: what the flight recorder can observe.

One experiment's trace is a sequence of :class:`TraceEvent` records,
each stamped with the simulated ``instret``/``cycles`` at emission.
The taxonomy mirrors what the paper's dissection needs:

* **architectural events** (``FETCH``, ``LOAD``, ``STORE``,
  ``REG_WRITE``) — the machine state stream; diffing two runs of the
  same experiment on these events finds the first corrupted
  architectural state and the infection set (Figure 7's propagation
  case study);
* **machine events** (``EXC_ENTER``, ``EXC_STAGE3``, ``EXC_EXIT``,
  ``SCHED``, ``PANIC``, ``CRASH``) — the paper's three-stage
  cycles-to-crash boundaries (Figure 3, Figures 13-15) and the
  scheduler context the error traveled through;
* **injector markers** (``INJECT``, ``ACTIVATE``) — where the error
  entered and where it was first consumed.

Events never carry live object references — only ints and strings —
so a trace serializes losslessly to JSONL and two traces compare by
value.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple


class EventKind(enum.Enum):
    """What one trace event records."""

    FETCH = "fetch"
    LOAD = "load"
    STORE = "store"
    REG_WRITE = "reg-write"
    EXC_ENTER = "exc-enter"          # exception raised (stage-1 end)
    EXC_STAGE3 = "exc-stage3"        # software handler entry (stage-2 end)
    EXC_EXIT = "exc-exit"            # benign exception returned
    SCHED = "sched"                  # scheduler context switch
    PANIC = "panic"                  # kernel panic_code set
    CRASH = "crash"                  # terminal crash (stage-3 end)
    INJECT = "inject"                # error written into the machine
    ACTIVATE = "activate"            # error first consumed


#: kinds that describe architectural state (used for run diffing)
ARCH_KINDS = frozenset((EventKind.FETCH, EventKind.LOAD,
                        EventKind.STORE, EventKind.REG_WRITE))


@dataclass
class TraceEvent:
    """One observation; unused fields stay ``None`` and encode compactly."""

    kind: EventKind
    instret: int
    cycles: int
    pc: int
    addr: Optional[int] = None
    width: Optional[int] = None
    value: Optional[int] = None
    reg: Optional[str] = None
    old: Optional[int] = None
    new: Optional[int] = None
    vector: Optional[int] = None
    pid: Optional[int] = None
    detail: str = ""

    def arch_key(self) -> Tuple:
        """Value identity for run diffing (cycles excluded: two runs
        that agree on every architectural fact are the same run even
        if a cold/warm cache shifted wall-clock bookkeeping)."""
        return (self.kind, self.instret, self.pc, self.addr, self.width,
                self.value, self.reg, self.new)

    def to_dict(self) -> dict:
        payload = {"kind": self.kind.value, "instret": self.instret,
                   "cycles": self.cycles, "pc": self.pc}
        for name in ("addr", "width", "value", "reg", "old", "new",
                     "vector", "pid"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        if self.detail:
            payload["detail"] = self.detail
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceEvent":
        return cls(
            kind=EventKind(payload["kind"]),
            instret=payload["instret"],
            cycles=payload["cycles"],
            pc=payload["pc"],
            addr=payload.get("addr"),
            width=payload.get("width"),
            value=payload.get("value"),
            reg=payload.get("reg"),
            old=payload.get("old"),
            new=payload.get("new"),
            vector=payload.get("vector"),
            pid=payload.get("pid"),
            detail=payload.get("detail", ""),
        )


def write_jsonl(events: Iterable[TraceEvent], path) -> int:
    """Dump *events* as one JSON object per line; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(),
                                    sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path) -> List[TraceEvent]:
    """Load a trace dumped by :func:`write_jsonl`."""
    events: List[TraceEvent] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events
