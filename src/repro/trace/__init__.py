"""Trace, replay, and dissection of injection experiments.

* :mod:`repro.trace.events` — the event taxonomy and JSONL codec;
* :mod:`repro.trace.recorder` — the flight recorder (ring or full
  capture) the machine and CPUs emit into;
* :mod:`repro.trace.replay` — deterministic re-execution of journaled
  experiments, verified against the journal;
* :mod:`repro.trace.dissect` — clean-twin diffing into infection
  sets, propagation chains, and the paper's three crash stages.
"""

from repro.trace.events import (
    ARCH_KINDS, EventKind, TraceEvent, read_jsonl, write_jsonl,
)
from repro.trace.recorder import DEFAULT_CAPACITY, MODES, TraceRecorder
from repro.trace.replay import (
    Replayer, ReplayDivergence, ReplayError, ReplayOutcome,
    replay_experiment,
)
from repro.trace.dissect import (
    Dissection, PropagationHop, StageBreakdown, dissect_experiment,
    dissect_traces, render_dissection, render_stage_table,
    stage_breakdown,
)

__all__ = [
    "ARCH_KINDS", "EventKind", "TraceEvent", "read_jsonl",
    "write_jsonl", "DEFAULT_CAPACITY", "MODES", "TraceRecorder",
    "Replayer", "ReplayDivergence", "ReplayError", "ReplayOutcome",
    "replay_experiment", "Dissection", "PropagationHop",
    "StageBreakdown", "dissect_experiment", "dissect_traces",
    "render_dissection", "render_stage_table", "stage_breakdown",
]
