"""Deterministic re-execution of journaled experiments.

A stored campaign pins everything its result stream depends on — the
manifest identity plus the serial-equivalence contract (per-experiment
seed = ``seed + index * 7919`` off the **global** target index).  That
makes any single journaled experiment re-runnable in isolation: rebuild
the campaign's :class:`CampaignConfig` from the manifest, regenerate
the (deterministic) target list, build the same :class:`RunSpec` the
original run used via ``Campaign.spec_for``, and execute it — this
time with the flight recorder armed.

The replayed result must match the journaled one bit for bit; any
difference raises :class:`ReplayDivergence` naming the fields that
drifted.  Divergence means the journal, the code, or the environment
changed under the campaign — exactly what a reproduction harness must
refuse to paper over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.injector import InjectionRun, RunSpec
from repro.injection.outcomes import (
    CampaignKind, InjectionResult, Outcome,
)
from repro.store.codec import result_to_dict
from repro.store.journal import JournalCorruption
from repro.store.manifest import (
    JOURNAL_NAME, CampaignManifest, ManifestError, code_version,
)
from repro.store.store import CampaignStore
from repro.trace.recorder import DEFAULT_CAPACITY, TraceRecorder


class ReplayError(Exception):
    """The requested experiment cannot be replayed at all."""


class ReplayDivergence(ReplayError):
    """The replayed run contradicts the journaled record."""

    def __init__(self, campaign_id: str, index: int,
                 fields: Dict[str, Tuple[object, object]]):
        self.campaign_id = campaign_id
        self.index = index
        #: field name -> (journaled value, replayed value)
        self.fields = fields
        detail = "; ".join(
            f"{name}: journaled {journaled!r} != replayed {replayed!r}"
            for name, (journaled, replayed) in sorted(fields.items()))
        super().__init__(
            f"replay of {campaign_id}[{index}] diverged: {detail}")


@dataclass
class ReplayOutcome:
    """One verified replay: the record, its twin, and the trace."""

    campaign_id: str
    index: int
    journaled: InjectionResult
    replayed: InjectionResult
    #: armed recorder (empty for screened experiments, which never
    #: touch a machine)
    recorder: TraceRecorder
    #: the spec the experiment ran under (None when screened)
    spec: Optional[RunSpec] = None


def _diff_results(journaled: InjectionResult,
                  replayed: InjectionResult
                  ) -> Dict[str, Tuple[object, object]]:
    """Field-by-field mismatch map over the codec's own view."""
    left = result_to_dict(journaled)
    right = result_to_dict(replayed)
    return {name: (left.get(name), right.get(name))
            for name in sorted(set(left) | set(right))
            if left.get(name) != right.get(name)}


class Replayer:
    """Replays experiments of one stored campaign.

    Construction does the expensive work once — manifest validation,
    journal replay, target regeneration, and (lazily, via the shared
    :class:`CampaignContext` cache) the base machine boot — so
    replaying every experiment of a campaign costs one boot plus one
    fork per experiment, same as the original run.
    """

    def __init__(self, store, campaign_id: str):
        self.store = store if isinstance(store, CampaignStore) \
            else CampaignStore(store)
        self.campaign_id = campaign_id
        directory = self.store.campaign_dir(campaign_id)
        try:
            self.manifest = CampaignManifest.load(directory)
        except ManifestError as exc:
            raise ReplayError(str(exc))
        if self.manifest.code_version != code_version():
            raise ReplayError(
                f"campaign {campaign_id} was written by "
                f"{self.manifest.code_version}, this code is "
                f"{code_version()}; determinism across code versions "
                f"is not guaranteed, so replay refuses")
        self.config = CampaignConfig(
            arch=self.manifest.arch,
            kind=CampaignKind(self.manifest.kind),
            count=self.manifest.count,
            seed=self.manifest.seed,
            ops=self.manifest.ops,
            dump_loss_probability=self.manifest.dump_loss_probability,
            profile_coverage=self.manifest.profile_coverage,
            prune=self.manifest.prune,
            fault_model=self.manifest.fault_model,
            # replay always single-steps: the dissector reasons about
            # per-instruction trace events, and a recorder forces the
            # step core anyway — exec_mode is not part of campaign
            # identity, so this never contradicts the manifest
            exec_mode="step",
            # and always runs from boot: the trace must cover the whole
            # experiment for dissection, and checkpoints (like
            # exec_mode) never enter campaign identity
            checkpoints=0)
        from repro.store import journal as journal_mod
        try:
            report = journal_mod.replay(directory / JOURNAL_NAME,
                                        truncate=False)
        except JournalCorruption as exc:
            raise ReplayError(
                f"campaign {campaign_id} journal is corrupt: {exc}")
        self.records: Dict[int, InjectionResult] = dict(report.records)
        self.campaign = Campaign(self.config)
        self.targets = self.campaign.generate_targets()

    # -- queries -----------------------------------------------------------

    @property
    def indices(self) -> List[int]:
        """Journaled global indices, ascending."""
        return sorted(self.records)

    def journaled(self, index: int) -> InjectionResult:
        if index not in self.records:
            raise ReplayError(
                f"campaign {self.campaign_id} has no journaled result "
                f"for index {index} ({len(self.records)} of "
                f"{self.manifest.count} journaled)")
        return self.records[index]

    def spec_for(self, index: int) -> RunSpec:
        if not 0 <= index < len(self.targets):
            raise ReplayError(
                f"index {index} outside campaign "
                f"{self.campaign_id}'s target list "
                f"(0..{len(self.targets) - 1})")
        return self.campaign.spec_for(index, self.targets[index])

    # -- execution ---------------------------------------------------------

    def _traced_run(self, spec: RunSpec, install: bool, mode: str,
                    capacity: int
                    ) -> Tuple[InjectionResult, TraceRecorder]:
        run = InjectionRun(spec)
        recorder = TraceRecorder(mode=mode, capacity=capacity)
        run.machine.attach_tracer(recorder)
        try:
            result = run.execute(install=install)
        finally:
            run.machine.detach_tracer()
        return result, recorder

    def replay(self, index: int, mode: str = "full",
               capacity: int = DEFAULT_CAPACITY) -> ReplayOutcome:
        """Re-execute experiment *index* and verify it against the
        journal; raises :class:`ReplayDivergence` on any mismatch."""
        journaled = self.journaled(index)
        target = self.targets[index] \
            if 0 <= index < len(self.targets) else None
        if target is None:
            raise ReplayError(
                f"index {index} outside campaign "
                f"{self.campaign_id}'s target list")
        # a screened experiment never ran a machine; replay re-screens
        if self.campaign._screen_not_activated(target, index):
            replayed = InjectionResult(
                arch=self.config.arch, kind=self.config.kind,
                target=target, outcome=Outcome.NOT_ACTIVATED,
                screened=True)
            recorder = TraceRecorder(mode=mode, capacity=capacity)
            spec = None
        else:
            spec = self.spec_for(index)
            replayed, recorder = self._traced_run(
                spec, install=True, mode=mode, capacity=capacity)
        fields = _diff_results(journaled, replayed)
        if fields:
            raise ReplayDivergence(self.campaign_id, index, fields)
        return ReplayOutcome(
            campaign_id=self.campaign_id, index=index,
            journaled=journaled, replayed=replayed,
            recorder=recorder, spec=spec)

    def clean_twin(self, index: int, mode: str = "full",
                   capacity: int = DEFAULT_CAPACITY
                   ) -> Tuple[InjectionResult, TraceRecorder]:
        """Run experiment *index*'s exact spec **without installing the
        error** — the uncorrupted twin the dissection diffs against."""
        return self._traced_run(self.spec_for(index), install=False,
                                mode=mode, capacity=capacity)

    def replay_all(self, mode: str = "ring",
                   capacity: int = DEFAULT_CAPACITY
                   ) -> List[ReplayOutcome]:
        """Replay and verify every journaled experiment (ring mode by
        default: verification only needs outcomes, not full traces)."""
        return [self.replay(index, mode=mode, capacity=capacity)
                for index in self.indices]


def replay_experiment(store, campaign_id: str, index: int,
                      mode: str = "full",
                      capacity: int = DEFAULT_CAPACITY) -> ReplayOutcome:
    """One-call convenience wrapper around :class:`Replayer`."""
    return Replayer(store, campaign_id).replay(index, mode=mode,
                                               capacity=capacity)
