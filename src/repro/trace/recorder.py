"""The flight recorder: a low-overhead event tracer for one machine.

Two capture modes:

* **ring** (the flight-recorder default) — a bounded ring buffer
  keeping exactly the last *capacity* events; memory stays O(capacity)
  no matter how long the run, and ``total_emitted`` still counts
  everything that passed through;
* **full** — every event is kept; what replay dissection diffs.

Cost model: the CPUs and the machine guard every emission site with a
single ``tracer is not None`` / ``trace is not None`` attribute check,
so a machine with no recorder attached pays one flag test per hot-path
call and nothing else (``benchmarks/bench_trace_overhead.py`` enforces
the <= 5 % bound).  Armed, the recorder only *reads* simulated state —
it never touches ``cycles``, ``instret``, memory, or any RNG — so an
armed run is bit-identical in outcome to an untraced one (pinned by
the campaign digests).

Register writes are observed by delta: on every fetch the recorder
compares the CPU's register snapshot against the previous fetch's and
attributes the changes to the instruction that just retired.  That
keeps the CPU cores free of per-register instrumentation and works
identically on both ISAs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Union

from repro.trace.events import EventKind, TraceEvent, write_jsonl

#: snapshot keys that change on every instruction by construction
_PC_KEYS = frozenset(("eip", "pc"))

MODES = ("ring", "full")
DEFAULT_CAPACITY = 4096


class TraceRecorder:
    """Collects :class:`TraceEvent` records from one armed machine."""

    def __init__(self, mode: str = "ring",
                 capacity: int = DEFAULT_CAPACITY):
        if mode not in MODES:
            raise ValueError(f"unknown trace mode {mode!r}; "
                             f"expected one of {MODES}")
        if mode == "ring" and capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.mode = mode
        self.capacity = capacity
        self._events: Union[Deque[TraceEvent], List[TraceEvent]] = \
            deque(maxlen=capacity) if mode == "ring" else []
        #: every event ever emitted (ring mode: including evicted ones)
        self.total_emitted = 0
        # register-delta state (see module docstring)
        self._last_snapshot: Optional[Dict[str, int]] = None
        self._last_pc = 0
        self._last_instret = 0

    # -- reading back ------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        """The captured events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring (always 0 in full mode)."""
        return self.total_emitted - len(self._events)

    def write_jsonl(self, path) -> int:
        return write_jsonl(self._events, path)

    def clear(self) -> None:
        self._events.clear()
        self.total_emitted = 0
        self._last_snapshot = None

    # -- emission ----------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)
        self.total_emitted += 1

    # -- CPU-facing hot hooks ---------------------------------------------

    def on_fetch(self, cpu, pc: int) -> None:
        """Called by the CPU core once per instruction, pre-execute."""
        self._flush_reg_delta(cpu)
        self.emit(TraceEvent(EventKind.FETCH, cpu.instret, cpu.cycles,
                             pc))
        self._last_pc = pc
        self._last_instret = cpu.instret

    def on_load(self, cpu, addr: int, width: int, value: int) -> None:
        self.emit(TraceEvent(EventKind.LOAD, cpu.instret, cpu.cycles,
                             self._last_pc, addr=addr, width=width,
                             value=value))

    def on_store(self, cpu, addr: int, width: int, value: int) -> None:
        self.emit(TraceEvent(EventKind.STORE, cpu.instret, cpu.cycles,
                             self._last_pc, addr=addr, width=width,
                             value=value))

    def on_reg_write(self, cpu, reg: str, old: int, new: int) -> None:
        """Explicit register-write hook (PPC ``mtspr`` path)."""
        self.emit(TraceEvent(EventKind.REG_WRITE, cpu.instret,
                             cpu.cycles, self._last_pc, reg=reg,
                             old=old, new=new))

    def _flush_reg_delta(self, cpu) -> None:
        snapshot = cpu.snapshot()
        previous = self._last_snapshot
        if previous is not None:
            for name, value in snapshot.items():
                if name in _PC_KEYS:
                    continue
                before = previous.get(name)
                if before != value:
                    self.emit(TraceEvent(
                        EventKind.REG_WRITE, self._last_instret,
                        cpu.cycles, self._last_pc, reg=name,
                        old=before, new=value))
        self._last_snapshot = snapshot

    def flush(self, cpu) -> None:
        """Emit the pending register delta (end of run / exception)."""
        self._flush_reg_delta(cpu)

    # -- machine-facing cold hooks ----------------------------------------

    def on_sched(self, machine, old_pid: int, new_pid: int) -> None:
        cpu = machine.cpu
        self.emit(TraceEvent(EventKind.SCHED, cpu.instret, cpu.cycles,
                             self._last_pc, old=old_pid, new=new_pid,
                             pid=new_pid))

    def on_exc_enter(self, machine, fault, fatal: bool) -> None:
        self._flush_reg_delta(machine.cpu)
        cpu = machine.cpu
        self.emit(TraceEvent(
            EventKind.EXC_ENTER, cpu.instret, cpu.cycles,
            self._last_pc, vector=_vector_code(fault.vector),
            addr=fault.address,
            detail=("fatal: " if fatal else "benign: ") + fault.detail))

    def on_exc_exit(self, machine, fault) -> None:
        cpu = machine.cpu
        self.emit(TraceEvent(
            EventKind.EXC_EXIT, cpu.instret, cpu.cycles, self._last_pc,
            vector=_vector_code(fault.vector), detail=fault.detail))

    def on_exc_stage3(self, machine) -> None:
        cpu = machine.cpu
        self.emit(TraceEvent(EventKind.EXC_STAGE3, cpu.instret,
                             cpu.cycles, self._last_pc,
                             detail="software handler entry"))

    def on_panic(self, machine, code: int) -> None:
        cpu = machine.cpu
        self.emit(TraceEvent(EventKind.PANIC, cpu.instret, cpu.cycles,
                             self._last_pc, value=code,
                             detail=f"panic_code={code}"))

    def on_crash(self, machine, report) -> None:
        cpu = machine.cpu
        self.emit(TraceEvent(
            EventKind.CRASH, cpu.instret, cpu.cycles, report.pc,
            vector=_vector_code(report.vector), addr=report.address,
            detail=report.detail))

    def on_inject(self, machine, detail: str, addr: Optional[int] = None,
                  reg: Optional[str] = None) -> None:
        cpu = machine.cpu
        self.emit(TraceEvent(EventKind.INJECT, cpu.instret, cpu.cycles,
                             self._last_pc, addr=addr, reg=reg,
                             detail=detail))

    def on_activate(self, machine, detail: str,
                    addr: Optional[int] = None) -> None:
        cpu = machine.cpu
        self.emit(TraceEvent(EventKind.ACTIVATE, cpu.instret,
                             cpu.cycles, self._last_pc, addr=addr,
                             detail=detail))


def _vector_code(vector) -> Optional[int]:
    try:
        return int(vector)
    except (TypeError, ValueError):      # pragma: no cover
        return None
