"""Crash dissection: infection sets, propagation chains, crash stages.

Three questions the paper answers about a crash, answered here from
traces instead of hand analysis:

* **what state got infected?** — diff the traced faulty run against
  its clean twin (same ``RunSpec``, error never installed); every
  architectural event present only in the faulty run is infected
  state (the paper's Figure 7 propagation case study, mechanized);
* **how did the error travel?** — order the infected locations by
  first corruption: the per-hop propagation chain from injection to
  the crashing access;
* **where did the cycles go?** — split cycles-to-crash at the traced
  exception boundaries into the paper's three stages (Figure 3):
  stage 1 runs from activation to the faulty instruction raising its
  exception, stage 2 is the hardware exception, stage 3 the software
  handler walking to the panic.  The stages sum to the result's
  ``latency`` by construction.

Dissection needs **full** traces; a ring trace may have evicted the
infection's early hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set, Tuple

from repro.injection.outcomes import InjectionResult
from repro.trace.events import ARCH_KINDS, EventKind, TraceEvent

#: stage labels, in paper order (Figure 3)
STAGE_LABELS = ("to exception", "hardware exception",
                "software handler")


# -- three-stage decomposition ------------------------------------------------

@dataclass
class StageBreakdown:
    """Cycles-to-crash split at the traced exception boundaries."""

    arch: str
    activation_cycles: int
    #: cycles at the fatal exception raise (stage-1 end)
    exception_cycles: int
    #: cycles at software-handler entry (stage-2 end)
    handler_cycles: int
    #: cycles at the terminal crash (stage-3 end)
    crash_cycles: int

    @property
    def stage1(self) -> int:
        return self.exception_cycles - self.activation_cycles

    @property
    def stage2(self) -> int:
        return self.handler_cycles - self.exception_cycles

    @property
    def stage3(self) -> int:
        return self.crash_cycles - self.handler_cycles

    @property
    def total(self) -> int:
        """Equals ``stage1 + stage2 + stage3`` *and* the result's
        ``latency`` — both telescope to ``crash - activation``."""
        return self.crash_cycles - self.activation_cycles

    @property
    def stages(self) -> Tuple[int, int, int]:
        return (self.stage1, self.stage2, self.stage3)


def stage_breakdown(events: Iterable[TraceEvent],
                    result: Optional[InjectionResult] = None,
                    arch: str = "") -> Optional[StageBreakdown]:
    """Extract the three-stage split from a traced crashed run.

    Returns ``None`` when the trace holds no crash.  The activation
    instant prefers the *result's* ``activation_cycles`` (the journaled
    truth, which includes the unobservable-activation fallback) over
    the trace's ``ACTIVATE``/``INJECT`` marker.
    """
    enter = handler = crash = None
    marker = None
    for event in events:
        if event.kind is EventKind.EXC_ENTER and \
                event.detail.startswith("fatal:"):
            enter = event
        elif event.kind is EventKind.EXC_STAGE3:
            handler = event
        elif event.kind is EventKind.CRASH:
            crash = event
        elif event.kind in (EventKind.ACTIVATE, EventKind.INJECT) \
                and marker is None:
            marker = event
    if crash is None or enter is None or handler is None:
        return None
    if result is not None and result.activation_cycles is not None:
        activation = result.activation_cycles
    elif marker is not None:
        activation = marker.cycles
    else:
        activation = enter.cycles
    if result is not None and not arch:
        arch = result.arch
    return StageBreakdown(
        arch=arch,
        activation_cycles=activation,
        exception_cycles=enter.cycles,
        handler_cycles=handler.cycles,
        crash_cycles=crash.cycles)


def render_stage_table(breakdowns: Iterable[StageBreakdown],
                       arch: str) -> str:
    """One arch's three-stage table (the paper's Figures 13-15 shape:
    per-crash stage cycles plus the column means)."""
    rows = [b for b in breakdowns if b.arch == arch or not b.arch]
    lines = [f"--- cycles-to-crash by stage ({arch}) ---",
             f"{'#':>3} {'to exception':>14} {'hw exception':>14} "
             f"{'sw handler':>12} {'total':>12}"]
    if not rows:
        lines.append("(no crashes dissected)")
        return "\n".join(lines)
    for number, b in enumerate(rows):
        lines.append(f"{number:>3} {b.stage1:>14} {b.stage2:>14} "
                     f"{b.stage3:>12} {b.total:>12}")
    count = len(rows)
    means = (sum(b.stage1 for b in rows) / count,
             sum(b.stage2 for b in rows) / count,
             sum(b.stage3 for b in rows) / count,
             sum(b.total for b in rows) / count)
    lines.append(f"{'avg':>3} {means[0]:>14.1f} {means[1]:>14.1f} "
                 f"{means[2]:>12.1f} {means[3]:>12.1f}")
    return "\n".join(lines)


# -- infection diffing --------------------------------------------------------

@dataclass
class PropagationHop:
    """First corruption of one architectural location."""

    order: int
    kind: EventKind
    location: str                      # "reg eax" | "mem 0x..." | "pc 0x..."
    instret: int
    cycles: int
    event: TraceEvent


@dataclass
class Dissection:
    """Everything the trace diff learned about one experiment."""

    result: Optional[InjectionResult]
    #: first faulty-run architectural event absent from the clean twin
    first_divergence: Optional[TraceEvent]
    #: infected locations in first-corruption order
    hops: List[PropagationHop] = field(default_factory=list)
    infected_registers: Set[str] = field(default_factory=set)
    infected_addresses: Set[int] = field(default_factory=set)
    #: faulty-run fetches the clean twin never made (control-flow
    #: divergence size)
    divergent_fetches: int = 0
    stages: Optional[StageBreakdown] = None

    @property
    def infected(self) -> bool:
        return self.first_divergence is not None


def _location(event: TraceEvent) -> str:
    if event.kind is EventKind.REG_WRITE:
        return f"reg {event.reg}"
    if event.kind in (EventKind.LOAD, EventKind.STORE):
        return f"mem {event.addr:#010x}"
    return f"pc {event.pc:#010x}"


def dissect_traces(faulty: Iterable[TraceEvent],
                   clean: Iterable[TraceEvent],
                   result: Optional[InjectionResult] = None,
                   arch: str = "") -> Dissection:
    """Diff a traced faulty run against its clean twin.

    Divergence is by value (``TraceEvent.arch_key``), not position: an
    event of the faulty run counts as infected state iff the clean
    twin never produced an identical architectural fact.
    """
    faulty = list(faulty)
    clean_keys = {event.arch_key() for event in clean
                  if event.kind in ARCH_KINDS}
    divergent = [event for event in faulty
                 if event.kind in ARCH_KINDS
                 and event.arch_key() not in clean_keys]
    hops: List[PropagationHop] = []
    seen: Set[str] = set()
    for event in divergent:
        location = _location(event)
        if location in seen:
            continue
        seen.add(location)
        hops.append(PropagationHop(
            order=len(hops), kind=event.kind, location=location,
            instret=event.instret, cycles=event.cycles, event=event))
    return Dissection(
        result=result,
        first_divergence=divergent[0] if divergent else None,
        hops=hops,
        infected_registers={event.reg for event in divergent
                            if event.kind is EventKind.REG_WRITE
                            and event.reg is not None},
        infected_addresses={event.addr for event in divergent
                            if event.kind in (EventKind.LOAD,
                                              EventKind.STORE)
                            and event.addr is not None},
        divergent_fetches=sum(1 for event in divergent
                              if event.kind is EventKind.FETCH),
        stages=stage_breakdown(faulty, result=result, arch=arch))


def dissect_experiment(replayer, index: int) -> Dissection:
    """Replay experiment *index* (full trace), run its clean twin, and
    diff them.  *replayer* is a :class:`repro.trace.replay.Replayer`."""
    outcome = replayer.replay(index, mode="full")
    if outcome.spec is None:           # screened: no machine ever ran
        return Dissection(result=outcome.replayed,
                          first_divergence=None)
    _twin_result, twin_recorder = replayer.clean_twin(index,
                                                      mode="full")
    return dissect_traces(outcome.recorder.events,
                          twin_recorder.events,
                          result=outcome.replayed,
                          arch=replayer.config.arch)


def render_dissection(dissection: Dissection,
                      max_hops: int = 20) -> str:
    """The per-experiment propagation report."""
    lines = ["--- error propagation chain ---"]
    result = dissection.result
    if result is not None:
        lines.append(f"experiment: {result.arch}/{result.kind.value} "
                     f"-> {result.outcome.value}"
                     + (f" ({result.cause.value})" if result.cause
                        else ""))
    if not dissection.infected:
        lines.append("no architectural divergence from the clean twin")
        return "\n".join(lines)
    lines.append(
        f"infected: {len(dissection.infected_registers)} register(s), "
        f"{len(dissection.infected_addresses)} address(es), "
        f"{dissection.divergent_fetches} divergent fetch(es)")
    lines.append(f"{'hop':>4} {'at instret':>12} {'at cycles':>12} "
                 f"{'kind':<10} location")
    for hop in dissection.hops[:max_hops]:
        lines.append(f"{hop.order:>4} {hop.instret:>12} "
                     f"{hop.cycles:>12} {hop.kind.value:<10} "
                     f"{hop.location}")
    hidden = len(dissection.hops) - max_hops
    if hidden > 0:
        lines.append(f"... {hidden} more hop(s)")
    if dissection.stages is not None:
        b = dissection.stages
        lines.append("stages (cycles): "
                     f"to-exception={b.stage1} "
                     f"hw-exception={b.stage2} "
                     f"sw-handler={b.stage3} total={b.total}")
    return "\n".join(lines)
