"""Pluggable fault models (``repro.faults``).

The subsystem that turns the one-fault-model reproduction into an
N-scenario platform: a fault model is a declarative
:class:`~repro.faults.spec.FaultSpec` (pattern, multiplicity, spatial
correlation, temporal schedule, targeted structures) registered under
a name; the injector, campaign engine, durable store, campaign
service, and CLI all select models by name, so the sharding /
resume / checkpoint / replay machinery works for every model
unchanged.  See :mod:`repro.faults.registry` for the four shipped
models.
"""

from repro.faults.model import (
    FaultModel, FaultModelError, FaultPlan, flip_mask, plan_span,
    register_width,
)
from repro.faults.registry import (
    DEFAULT_MODEL, TARGETED_STRUCTURES, available_models, get_model,
    model_applies, register_model,
)
from repro.faults.spec import (
    PATTERNS, SPATIAL, FaultSpec, FaultSpecError, spec_from_dict,
)

__all__ = [
    "DEFAULT_MODEL", "PATTERNS", "SPATIAL", "TARGETED_STRUCTURES",
    "FaultModel", "FaultModelError", "FaultPlan", "FaultSpec",
    "FaultSpecError", "available_models", "flip_mask", "get_model",
    "model_applies", "plan_span", "register_model", "register_width",
    "spec_from_dict",
]
