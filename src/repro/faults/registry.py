"""The fault-model registry and the four shipped models.

A model is registered under its spec's name; campaigns, the store
manifest, the service protocol, and the CLI all reference models by
that name, so registering a new spec here (or via
:func:`register_model` from an experiment script) makes it available
to every layer — sharded engine, durable store, checkpoint dispatch,
trace replay — with no further wiring.

Shipped models
--------------

``single-bit``
    The paper's model (Section 3.5): one flipped bit, single-shot.
    The default, and byte-identical to the pre-registry injector.
``burst``
    Multi-bit upset: 2-8 adjacent bits per experiment (drawn
    deterministically from the experiment seed), row-correlated so a
    burst spills across byte and word boundaries — the MBU-dominated
    failure mode modern radiation studies report (arXiv:2503.03722).
``intermittent``
    The single flipped bit re-fires on a deterministic schedule
    (every ``retrigger_period`` retired instructions,
    ``retrigger_count`` times) — a marginal cell toggling between
    states rather than a single-shot upset.
``targeted``
    Single-bit faults aimed at named kernel data structures —
    scheduler run-queue state, the syscall dispatch table, watchdog
    timekeeping — resolved through linker symbols into a weighted
    target set (arXiv:2603.25666's targeted-campaign methodology).
    Applies to ``data`` campaigns only.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.faults.model import FaultModel, FaultModelError
from repro.faults.spec import FaultSpec

#: the model every config defaults to (the paper's own)
DEFAULT_MODEL = "single-bit"

#: scheduler run-queue, syscall dispatch table, and watchdog/timer
#: state, by linker symbol — the named structures the targeted model
#: resolves (weights are the symbols' sizes)
TARGETED_STRUCTURES: Tuple[str, ...] = (
    "task_table",          # scheduler run-queue (task structs)
    "current_pid",         # running-task selector
    "nr_tasks",
    "need_resched",        # preemption request flag
    "runqueue_lock",
    "jiffies",             # watchdog/timer state
    "sys_call_table",      # syscall dispatch table
)

_REGISTRY: Dict[str, FaultModel] = {}
_ORDER: List[str] = []


def register_model(model: FaultModel, replace: bool = False) -> FaultModel:
    """Register *model* under its spec name.

    Re-registering an existing name is refused unless *replace* is
    set — two specs silently sharing a name would fork campaign
    identity from campaign behavior.
    """
    name = model.name
    if name in _REGISTRY and not replace:
        raise FaultModelError(
            f"fault model {name!r} is already registered "
            f"(pass replace=True to override)")
    if name not in _REGISTRY:
        _ORDER.append(name)
    _REGISTRY[name] = model
    return model


def get_model(name: str) -> FaultModel:
    """Look up a registered model (raises with the known names)."""
    model = _REGISTRY.get(name)
    if model is None:
        raise FaultModelError(
            f"unknown fault model {name!r}; registered: "
            f"{', '.join(available_models())}")
    return model


def available_models() -> Tuple[str, ...]:
    """Registered model names, in registration order."""
    return tuple(_ORDER)


def model_applies(name: str, kind_value: str) -> bool:
    """Whether model *name* can drive a *kind_value* campaign."""
    return get_model(name).applies_to(kind_value)


def _register_builtins() -> None:
    register_model(FaultModel(FaultSpec(name="single-bit")))
    register_model(FaultModel(FaultSpec(
        name="burst", min_bits=2, max_bits=8, spatial="adjacent")))
    register_model(FaultModel(FaultSpec(
        name="intermittent", retrigger_period=1500,
        retrigger_count=4)))
    register_model(FaultModel(FaultSpec(
        name="targeted", structures=TARGETED_STRUCTURES)))


_register_builtins()
