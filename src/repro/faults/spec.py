"""Declarative fault-model specifications.

A :class:`FaultSpec` describes *what a fault looks like* independently
of any campaign: the bit pattern, how many bits flip (multiplicity),
how those bits relate spatially (correlation), whether the fault
re-fires over time (temporal schedule), and — for targeted campaigns —
which named kernel structures the fault lands in.  The spec is pure
data: it serializes to canonical JSON (the codec every boundary —
store manifest, service payload, CLI — shares), round-trips losslessly,
and hashes to a stable digest, so a fault model can join campaign
identity the same way the prune policy does.

The *mechanics* of a spec (deriving the concrete flip set for one
target, arming retriggers) live in :mod:`repro.faults.model`; the
shipped specs live in :mod:`repro.faults.registry`.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Dict, Tuple

#: bit patterns a spec may request.  Only ``flip`` (XOR, the paper's
#: transient model) ships; the field exists so stuck-at-0/1 models can
#: slot in without changing any serialized shape.
PATTERNS: Tuple[str, ...] = ("flip",)

#: spatial-correlation shapes.  ``single`` is the degenerate one-bit
#: case; ``adjacent`` is a burst of consecutive bit positions —
#: row-correlated upsets that spill across byte and word boundaries
#: the way MBU studies report them.
SPATIAL: Tuple[str, ...] = ("single", "adjacent")


class FaultSpecError(ValueError):
    """A fault spec (or its serialized form) is invalid."""


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault model.

    ``min_bits``/``max_bits`` bound the per-experiment multiplicity
    (drawn deterministically from the experiment seed when they
    differ).  ``retrigger_period``/``retrigger_count`` describe the
    temporal schedule of an intermittent fault: after the initial
    injection the same bits re-flip every *period* retired
    instructions, *count* times.  ``structures`` names kernel globals
    (linker symbols) a targeted campaign draws its addresses from,
    weighted by their sizes.
    """

    name: str
    pattern: str = "flip"
    min_bits: int = 1
    max_bits: int = 1
    spatial: str = "single"
    retrigger_period: int = 0
    retrigger_count: int = 0
    structures: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise FaultSpecError(f"spec needs a name, got {self.name!r}")
        if self.pattern not in PATTERNS:
            raise FaultSpecError(
                f"pattern must be one of {PATTERNS}, "
                f"got {self.pattern!r}")
        if self.spatial not in SPATIAL:
            raise FaultSpecError(
                f"spatial must be one of {SPATIAL}, "
                f"got {self.spatial!r}")
        if not (isinstance(self.min_bits, int)
                and isinstance(self.max_bits, int)
                and not isinstance(self.min_bits, bool)
                and not isinstance(self.max_bits, bool)
                and 1 <= self.min_bits <= self.max_bits <= 32):
            raise FaultSpecError(
                f"need 1 <= min_bits <= max_bits <= 32, got "
                f"{self.min_bits!r}..{self.max_bits!r}")
        if self.max_bits > 1 and self.spatial == "single":
            raise FaultSpecError(
                "multiplicity > 1 requires a spatial shape "
                "(spatial='adjacent')")
        if not (isinstance(self.retrigger_period, int)
                and isinstance(self.retrigger_count, int)
                and not isinstance(self.retrigger_period, bool)
                and not isinstance(self.retrigger_count, bool)
                and self.retrigger_period >= 0
                and self.retrigger_count >= 0):
            raise FaultSpecError(
                f"retrigger fields must be non-negative integers, got "
                f"period={self.retrigger_period!r} "
                f"count={self.retrigger_count!r}")
        if bool(self.retrigger_period) != bool(self.retrigger_count):
            raise FaultSpecError(
                "retrigger_period and retrigger_count must be set "
                "together (both zero = single-shot)")
        if not isinstance(self.structures, tuple):
            # tolerate lists from JSON construction paths
            object.__setattr__(self, "structures",
                               tuple(self.structures))
        if not all(isinstance(s, str) and s for s in self.structures):
            raise FaultSpecError(
                f"structures must be non-empty symbol names, "
                f"got {self.structures!r}")

    # -- derived properties ------------------------------------------------

    @property
    def multiplicity(self) -> int:
        """The largest number of bits one experiment may flip."""
        return self.max_bits

    @property
    def intermittent(self) -> bool:
        return self.retrigger_count > 0

    @property
    def targeted(self) -> bool:
        return bool(self.structures)

    # -- codec -------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """The canonical JSON view (round-trips via
        :func:`spec_from_dict`)."""
        payload = dataclasses.asdict(self)
        payload["structures"] = list(self.structures)
        return payload

    def digest(self) -> str:
        """sha256 over the canonical encoding — the spec's identity."""
        from repro.store.codec import canonical_json
        payload = canonical_json(self.to_dict())
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """One human line for ``repro faults list``."""
        if self.min_bits == self.max_bits:
            bits = f"{self.min_bits} bit" + \
                ("s" if self.min_bits > 1 else "")
        else:
            bits = f"{self.min_bits}-{self.max_bits} adjacent bits"
        parts = [f"{self.pattern}, {bits}"]
        if self.intermittent:
            parts.append(
                f"re-fires x{self.retrigger_count} every "
                f"{self.retrigger_period} instrets")
        if self.targeted:
            parts.append(
                f"targets {', '.join(self.structures)}")
        return "; ".join(parts)


_SPEC_FIELDS = tuple(spec.name for spec in
                     dataclasses.fields(FaultSpec))


def spec_from_dict(payload: Dict[str, object]) -> FaultSpec:
    """Decode a :meth:`FaultSpec.to_dict` payload (strict)."""
    if not isinstance(payload, dict):
        raise FaultSpecError(
            f"fault spec must be a JSON object, got {type(payload).__name__}")
    unknown = sorted(set(payload) - set(_SPEC_FIELDS))
    if unknown:
        raise FaultSpecError(
            f"unknown fault spec field(s): {', '.join(unknown)}")
    kwargs = dict(payload)
    if "structures" in kwargs:
        structures = kwargs["structures"]
        if not isinstance(structures, (list, tuple)):
            raise FaultSpecError(
                f"structures must be a list, got {structures!r}")
        kwargs["structures"] = tuple(structures)
    try:
        return FaultSpec(**kwargs)
    except TypeError as exc:
        raise FaultSpecError(f"malformed fault spec: {exc}")
