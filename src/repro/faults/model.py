"""Fault-model mechanics: from a declarative spec to concrete flips.

A :class:`FaultModel` wraps one :class:`~repro.faults.spec.FaultSpec`
and derives, for one injection target and its per-experiment seed, the
concrete :class:`FaultPlan` the injector executes: which ``(address,
bit)`` pairs flip (memory kinds), which register bits flip (register
kind), and the retrigger schedule (intermittent models).  The
derivation is a **pure function** of ``(spec, target, seed)`` — no
process state, no wall clock — so plans are identical across the
serial loop, any sharding, checkpoint dispatch, store resume, and
trace replay.

The single-bit spec degenerates to exactly the legacy injector
behavior: one flip at the target's own coordinates, no retriggers, and
the derivation never consults the RNG — extracting it into the
registry provably changes nothing (the pinned campaign digests are the
proof, see ``tests/test_campaign_digests.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.faults.spec import FaultSpec


class FaultModelError(Exception):
    """A model cannot be applied (unknown name, bad kind, missing
    symbol)."""


@dataclass(frozen=True)
class FaultPlan:
    """The concrete fault one experiment installs.

    ``flips`` are absolute ``(byte address, bit 0-7)`` pairs for the
    memory-backed kinds (code/stack/data); ``register_bits`` are bit
    positions within the targeted register's width.  ``retriggers``
    re-applications of the same flips follow the initial injection,
    ``retrigger_period`` retired instructions apart.
    """

    flips: Tuple[Tuple[int, int], ...] = ()
    register_bits: Tuple[int, ...] = ()
    retriggers: int = 0
    retrigger_period: int = 0


class FaultModel:
    """One registered fault model: a spec plus its pure derivations."""

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:
        return f"FaultModel({self.spec.name!r})"

    # -- applicability -----------------------------------------------------

    def applies_to(self, kind_value: str) -> bool:
        """Whether this model can drive a *kind_value* campaign.

        Targeted models resolve named data structures, so they only
        apply to ``data`` campaigns; every other shipped model applies
        to all four target classes.
        """
        if self.spec.targeted:
            return kind_value == "data"
        return True

    # -- derivation helpers ------------------------------------------------

    def _rng(self, seed: int) -> random.Random:
        """The model's private, stable RNG stream for one experiment.

        Seeded off the spec name and the per-experiment seed (never
        the campaign RNG), so adding a model — or running the
        single-bit model, which never draws — cannot perturb any
        existing stream.
        """
        return random.Random(f"repro.faults:{self.spec.name}:{seed}")

    def _burst_size(self, seed: int) -> int:
        spec = self.spec
        if spec.min_bits == spec.max_bits:
            return spec.min_bits
        return self._rng(seed).randint(spec.min_bits, spec.max_bits)

    def _schedule(self) -> Tuple[int, int]:
        return (self.spec.retrigger_count, self.spec.retrigger_period)

    # -- per-kind plans ----------------------------------------------------

    def memory_plan(self, addr: int, bit: int, seed: int,
                    lo: int, hi: int) -> FaultPlan:
        """Flips for a stack/data target at ``(addr, bit 0-7)``.

        A burst occupies consecutive absolute bit positions starting
        at the target's own bit — row-correlated adjacency that spills
        across byte and word boundaries — truncated at the enclosing
        region ``[lo, hi)`` (a burst cannot escape the physical row it
        upset).
        """
        size = self._burst_size(seed)
        start = addr * 8 + (bit & 7)
        flips: List[Tuple[int, int]] = []
        for position in range(start, start + size):
            byte_addr = position // 8
            if not lo <= byte_addr < hi:
                break
            flips.append((byte_addr, position % 8))
        retriggers, period = self._schedule()
        return FaultPlan(flips=tuple(flips), retriggers=retriggers,
                         retrigger_period=period)

    def code_plan(self, addr: int, bit: int, insn_len: int,
                  seed: int) -> FaultPlan:
        """Flips for a code target: *bit* indexes into the
        instruction's ``insn_len``-byte encoding; a burst stays within
        the encoding (the corrupted fetch is the one the breakpoint
        observes)."""
        size = self._burst_size(seed)
        limit = insn_len * 8
        flips = tuple(
            (addr + position // 8, position % 8)
            for position in range(bit, min(bit + size, limit)))
        retriggers, period = self._schedule()
        return FaultPlan(flips=flips, retriggers=retriggers,
                         retrigger_period=period)

    def screen_span_bytes(self, bit: int, seed: int) -> int:
        """Byte count a memory plan at ``bit`` (0-7) may span.

        The clean-run screen must observe at least the watchpoint's
        span or it would vouch for bytes it never checked; this bound
        ignores region truncation (which only shrinks the real span),
        so screening stays conservative without knowing the region.
        Exactly 1 for single-bit models — the legacy screen.
        """
        size = self._burst_size(seed)
        return ((bit & 7) + size - 1) // 8 + 1

    def register_plan(self, bit: int, width: int, seed: int) -> FaultPlan:
        """Bit positions to flip within a *width*-bit register."""
        size = self._burst_size(seed)
        bits = tuple(range(bit, min(bit + size, width)))
        retriggers, period = self._schedule()
        return FaultPlan(register_bits=bits, retriggers=retriggers,
                         retrigger_period=period)

    # -- targeted structure resolution -------------------------------------

    def target_pool(self, image: object) -> Tuple[Tuple[int, int], ...]:
        """Resolve the spec's named structures against *image*'s
        linker symbols into ``(lo, hi)`` byte ranges.

        The ranges form a weighted target set — target generation
        draws uniformly over their union, so each structure's weight
        is its size in bytes.  An unknown symbol is a hard error (a
        targeted campaign against a structure that does not exist is a
        configuration bug, not an empty result).
        """
        table = getattr(image, "globals", None)
        if table is None:
            raise FaultModelError(
                f"model {self.name!r}: image has no symbol table")
        ranges: List[Tuple[int, int]] = []
        for symbol in self.spec.structures:
            info = table.get(symbol)
            if info is None:
                known = ", ".join(sorted(table)[:8])
                raise FaultModelError(
                    f"model {self.name!r}: kernel image has no symbol "
                    f"{symbol!r} (known: {known}, ...)")
            ranges.append((info.addr, info.addr + info.size))
        if not ranges:
            raise FaultModelError(
                f"model {self.name!r} has no structures to target")
        return tuple(ranges)


def register_width(arch: str, name: str, fallback: int = 32) -> int:
    """Architectural width of a system register, by catalogue name."""
    if arch == "x86":
        from repro.x86.registers import P4_SYSTEM_REGISTERS
        catalogue: Tuple = tuple(P4_SYSTEM_REGISTERS)
    else:
        from repro.ppc.registers import G4_SUPERVISOR_REGISTERS
        catalogue = tuple(G4_SUPERVISOR_REGISTERS)
    for reg in catalogue:
        if reg.name == name:
            return int(reg.bits)
    return fallback


def flip_mask(bits: Tuple[int, ...]) -> int:
    """The XOR mask flipping every bit position in *bits*."""
    mask = 0
    for bit in bits:
        mask |= 1 << bit
    return mask


def plan_span(plan: FaultPlan) -> Optional[Tuple[int, int]]:
    """``(lo, hi)`` byte range covered by a memory plan's flips
    (``None`` for register plans)."""
    if not plan.flips:
        return None
    addrs = [addr for addr, _bit in plan.flips]
    return (min(addrs), max(addrs) + 1)
