"""Write-ahead JSONL journal for campaign results.

One line per completed injection, appended the moment the result
exists — from the serial loop and from the parallel shard merge alike
— so a crash of the harness loses at most the experiments in flight.

Record layout (one JSON object per line)::

    {"v": 1, "index": 17, "crc": "<sha256[:16]>", "result": {...}}

``crc`` is a checksum over the canonical encoding of ``(index,
result)``, so a flipped byte anywhere in a record is detected on
replay — fitting, for a fault-injection harness.

Replay distinguishes the two ways a journal goes bad:

* a **torn tail** — the final record is incomplete or fails its
  checksum and *nothing valid follows it*: the classic artifact of a
  crash mid-append.  Replay truncates the file back to the last good
  record and carries on; resume re-runs the lost experiment.
* **interior corruption** — a record fails but valid records follow
  it.  An append-only writer cannot produce that state, so it is real
  data loss: replay raises :class:`JournalCorruption` rather than
  silently dropping records.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.injection.outcomes import InjectionResult
from repro.store.codec import (
    canonical_json, result_from_dict, result_to_dict,
)

RECORD_VERSION = 1


class JournalCorruption(Exception):
    """A journal record failed validation with valid records after it."""


def _checksum(index: int, result_payload: dict) -> str:
    body = canonical_json({"index": index, "result": result_payload})
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


def encode_record(index: int, result: InjectionResult) -> str:
    payload = result_to_dict(result)
    record = {"v": RECORD_VERSION, "index": index,
              "crc": _checksum(index, payload), "result": payload}
    return canonical_json(record)


def decode_record(line: str) -> Tuple[int, InjectionResult]:
    """Parse + validate one journal line; raises ``ValueError`` if bad."""
    record = json.loads(line)
    if not isinstance(record, dict) or record.get("v") != RECORD_VERSION:
        raise ValueError("not a journal record")
    index, payload = record["index"], record["result"]
    if record.get("crc") != _checksum(index, payload):
        raise ValueError(f"checksum mismatch on record index {index}")
    return index, result_from_dict(payload)


class Journal:
    """Append-only result journal (the write side)."""

    def __init__(self, path, sync: bool = False):
        self.path = Path(path)
        #: fsync every append — survives power loss, not just process
        #: death, at a large throughput cost; off by default because
        #: the threat model here is the harness crashing
        self.sync = sync
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, index: int, result: InjectionResult) -> None:
        self._handle.write(encode_record(index, result) + "\n")
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class ReplayReport:
    """What :func:`replay` found (and possibly repaired)."""

    records: List[Tuple[int, InjectionResult]]
    truncated_bytes: int = 0           # torn tail dropped, if any
    torn_detail: str = ""


def replay(path, truncate: bool = True) -> ReplayReport:
    """Read a journal back, validating every record.

    A torn tail is truncated in place (when *truncate*, the default)
    so the next append continues a clean file; interior corruption
    raises :class:`JournalCorruption`.  A missing file is an empty
    journal.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return ReplayReport(records=[])

    records: List[Tuple[int, InjectionResult]] = []
    seen: set = set()
    offset = 0
    bad_offset: Optional[int] = None
    bad_detail = ""
    while offset < len(data):
        newline = data.find(b"\n", offset)
        end = len(data) if newline == -1 else newline + 1
        line = data[offset:end]
        try:
            if newline == -1:
                raise ValueError("no trailing newline (partial write)")
            index, result = decode_record(
                line.decode("utf-8", errors="strict"))
        except (ValueError, KeyError, TypeError,
                UnicodeDecodeError) as exc:
            if bad_offset is None:
                bad_offset, bad_detail = offset, str(exc)
            offset = end
            continue
        if bad_offset is not None:
            # a valid record *after* a bad one: not a torn tail
            raise JournalCorruption(
                f"{path}: corrupt record at byte {bad_offset} "
                f"({bad_detail}) followed by valid records")
        if index not in seen:          # duplicates: first write wins
            seen.add(index)
            records.append((index, result))
        offset = end

    truncated = 0
    detail = ""
    if bad_offset is not None:
        truncated = len(data) - bad_offset
        detail = bad_detail
        if truncate:
            with open(path, "r+b") as handle:
                handle.truncate(bad_offset)
    return ReplayReport(records=records, truncated_bytes=truncated,
                        torn_detail=detail)
