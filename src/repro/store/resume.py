"""Checkpoint/resume orchestration: run a campaign *through* a store.

``Campaign.run(store=...)`` lands here.  The contract:

* every completed experiment is journaled before the progress callback
  sees it, so a kill at any instant loses at most in-flight work;
* on resume, already-journaled global indices are **skipped** — their
  results stream back from disk — and only the remainder is injected;
* the per-target seed keys on the global index (PR 1's determinism
  contract), so a resumed campaign — at any worker count, killed any
  number of times — produces a ``CampaignResult`` bit-identical to an
  uninterrupted run, and raising ``count`` tops an existing campaign
  up by injecting only the new tail.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.store.store import CampaignStore


def _as_store(store) -> CampaignStore:
    if isinstance(store, CampaignStore):
        return store
    return CampaignStore(store)


def run_with_store(campaign, store, resume: bool = False,
                   progress=None, workers: int = 1,
                   progress_callback=None):
    """Execute *campaign* with write-ahead journaling and resume.

    Returns the same ``CampaignResult`` the plain run would; results
    present in the journal are reused (decoded, not re-injected),
    pending global indices are injected serially or across *workers*.
    *progress_callback* is the batch form ``(done, total, batch)``;
    on a resume its first batch is the already-journaled prefix, and
    every later batch is journaled before the callback sees it, so a
    callback that raises (service-side cancellation) aborts the run
    without losing completed work.
    """
    from repro.injection.campaign import CampaignResult

    opened = _as_store(store).open(campaign.config, resume=resume)
    try:
        targets = campaign.generate_targets()
        total = len(targets)
        pending: List[Tuple[int, object]] = [
            (index, targets[index]) for index in range(total)
            if index not in opened.done]
        done_base = total - len(pending)
        if done_base:
            if progress_callback is not None:
                progress_callback(done_base, total,
                                  sorted(opened.done.items()))
            if progress is not None:
                progress(done_base, total)

        failures: list = []
        if pending and workers > 1:
            from repro.injection.parallel import run_items
            _merged, failures = run_items(
                campaign, pending, workers, progress=progress,
                sink=opened.record, done_base=done_base, total=total,
                progress_callback=progress_callback)
        elif pending:
            for offset, (index, target) in enumerate(pending):
                result = campaign.run_target(index, target)
                opened.record(index, result)
                if progress_callback is not None:
                    progress_callback(done_base + offset + 1, total,
                                      [(index, result)])
                if progress is not None:
                    progress(done_base + offset + 1, total)

        out = CampaignResult(config=campaign.config)
        out.failures.extend(failures)
        out.results.extend(opened.done[index] for index in range(total))
        return out
    finally:
        opened.close()


def resume_plan(store, config) -> dict:
    """What a resume of *config* would do (inspection/CLI helper)."""
    from repro.store.manifest import CampaignManifest
    from repro.store import journal as journal_mod
    from repro.store.manifest import JOURNAL_NAME
    store = _as_store(store)
    manifest = CampaignManifest.from_config(config)
    directory = store.campaign_dir(manifest.campaign_id)
    replayed = journal_mod.replay(directory / JOURNAL_NAME,
                                  truncate=False)
    done = {index for index, _result in replayed.records}
    return {
        "campaign_id": manifest.campaign_id,
        "journaled": len(done),
        "pending": [index for index in range(config.count)
                    if index not in done],
        "truncated_bytes": replayed.truncated_bytes,
    }
