"""The one serialization path for campaign records.

Every byte that leaves or enters the result store — and the
``analysis.export`` JSON dump, which is a thin wrapper over this
module — goes through these functions, so there is exactly one place
where an :class:`InjectionResult` (or a :class:`CrashReport`) maps to
JSON and back.

The codec is *lossless by type*: a decoded record compares equal
(``==``) to the record that was encoded.  That requires two things
plain ``json`` round-trips get wrong:

* **target dataclasses** come back as the original frozen dataclass
  (``CodeTarget``/``StackTarget``/``DataTarget``/``RegisterTarget``),
  not as a bare dict — the ``type`` tag in the payload selects the
  class;
* **tuple-typed fields** (e.g. ``CrashReport.frame_pointers``) come
  back as tuples, not the lists JSON produces.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional

from repro.injection.outcomes import (
    CampaignKind, CrashCauseG4, CrashCauseP4, InjectionResult, Outcome,
)
from repro.injection.targets import (
    CodeTarget, DataTarget, RegisterTarget, StackTarget,
)
from repro.machine.events import CrashReport

_CAUSES = {cause.value: cause
           for cause in list(CrashCauseP4) + list(CrashCauseG4)}

#: payload ``type`` tag -> target dataclass
TARGET_TYPES = {cls.__name__: cls
                for cls in (CodeTarget, StackTarget, DataTarget,
                            RegisterTarget)}


def _decode_dataclass(cls, payload: dict):
    """Instantiate *cls* from *payload*, restoring tuple fields.

    JSON has no tuple type, so any dataclass field annotated as a
    tuple comes back from ``json.loads`` as a list; equality with the
    original record then silently fails.  This is the single place
    that converts them back.
    """
    kwargs = {}
    for spec in dataclasses.fields(cls):
        if spec.name not in payload:
            continue
        value = payload[spec.name]
        annotation = str(spec.type)
        if isinstance(value, list) and annotation.lower().startswith(
                ("tuple", "typing.tuple")):
            value = tuple(value)
        kwargs[spec.name] = value
    return cls(**kwargs)


# -- InjectionResult ---------------------------------------------------------

def result_to_dict(result: InjectionResult) -> dict:
    target = result.target
    if target is not None and dataclasses.is_dataclass(target):
        target_payload: Optional[dict] = dict(
            type=type(target).__name__,
            **dataclasses.asdict(target))
    else:
        target_payload = None
    return {
        "arch": result.arch,
        "kind": result.kind.value,
        "outcome": result.outcome.value,
        "cause": result.cause.value if result.cause else None,
        "cause_arch": ("x86" if isinstance(result.cause, CrashCauseP4)
                       else "ppc") if result.cause else None,
        "activation_cycles": result.activation_cycles,
        "crash_cycles": result.crash_cycles,
        "activation_instret": result.activation_instret,
        "crash_instret": result.crash_instret,
        "detail": result.detail,
        "function": result.function,
        "subsystem": result.subsystem,
        "screened": result.screened,
        "target": target_payload,
    }


def _target_from_dict(payload: Optional[dict]):
    if payload is None:
        return None
    cls = TARGET_TYPES.get(payload.get("type"))
    if cls is None:
        # unknown target type (e.g. a newer writer): keep the raw
        # payload rather than losing data
        return payload
    fields = {key: value for key, value in payload.items()
              if key != "type"}
    return _decode_dataclass(cls, fields)


def result_from_dict(payload: dict) -> InjectionResult:
    cause = None
    if payload.get("cause"):
        cause = _CAUSES[payload["cause"]]
    return InjectionResult(
        arch=payload["arch"],
        kind=CampaignKind(payload["kind"]),
        target=_target_from_dict(payload.get("target")),
        outcome=Outcome(payload["outcome"]),
        cause=cause,
        activation_cycles=payload.get("activation_cycles"),
        crash_cycles=payload.get("crash_cycles"),
        activation_instret=payload.get("activation_instret"),
        crash_instret=payload.get("crash_instret"),
        detail=payload.get("detail", ""),
        function=payload.get("function", ""),
        subsystem=payload.get("subsystem", ""),
        screened=payload.get("screened", False),
    )


# -- CrashReport -------------------------------------------------------------

def report_to_dict(report: CrashReport) -> dict:
    vector = report.vector
    reason = report.program_reason
    payload = dataclasses.asdict(report)
    payload["vector"] = int(vector) if vector is not None else None
    payload["program_reason"] = getattr(reason, "name", None)
    payload["frame_pointers"] = list(report.frame_pointers)
    return payload


def report_from_dict(payload: dict) -> CrashReport:
    payload = dict(payload)
    vector = payload.get("vector")
    if vector is not None:
        if payload["arch"] == "x86":
            from repro.x86.exceptions import X86Vector
            payload["vector"] = X86Vector(vector)
        else:
            from repro.ppc.exceptions import PPCVector
            payload["vector"] = PPCVector(vector)
    reason = payload.get("program_reason")
    if reason is not None:
        from repro.ppc.exceptions import ProgramReason
        payload["program_reason"] = ProgramReason[reason]
    return _decode_dataclass(CrashReport, payload)


# -- canonical bytes ---------------------------------------------------------

def canonical_json(payload) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace).

    Journal checksums are computed over these bytes, so the encoding
    must never drift between writer and verifier.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def results_digest(results) -> str:
    """sha256 over the canonical encoding of a full result stream.

    The campaign-equivalence fingerprint: two runs (serial vs sharded,
    direct vs through the service, uninterrupted vs killed-and-resumed)
    are bit-identical exactly when their digests match.  The digest
    pinning tests and the service's job-completion digest both use it.
    """
    import hashlib
    payload = canonical_json([result_to_dict(result)
                              for result in results])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
