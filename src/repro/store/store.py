"""The durable campaign store: directory layout, query, verify, export.

Layout::

    <root>/
      <campaign_id>/
        manifest.json     # identity + largest requested count
        journal.jsonl     # write-ahead result journal

``campaign_id`` derives from the manifest identity (see
:mod:`repro.store.manifest`), so a store holds any number of
campaigns — different kinds, arches, seeds, code versions — without
collisions, and re-running the same config always lands in the same
directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.injection.outcomes import InjectionResult
from repro.store import journal as journal_mod
from repro.store.journal import Journal, JournalCorruption
from repro.store.manifest import (
    JOURNAL_NAME, CampaignManifest, ManifestError,
)


class StoreError(Exception):
    """Base class for store failures."""


class StoreMismatchError(StoreError):
    """The on-disk campaign contradicts the requested config."""


class CampaignExistsError(StoreError):
    """The campaign already has journaled results and resume is off."""


@dataclass
class OpenCampaign:
    """One campaign opened for writing (resume bookkeeping included)."""

    manifest: CampaignManifest
    directory: Path
    #: already-journaled results, keyed by global target index
    done: Dict[int, InjectionResult]
    journal: Journal
    #: bytes dropped from a torn journal tail on open, if any
    truncated_bytes: int = 0

    def record(self, index: int, result: InjectionResult) -> None:
        """Journal one completed experiment (the WAL append)."""
        self.journal.append(index, result)
        self.done[index] = result

    def close(self) -> None:
        self.journal.close()


@dataclass
class VerifyReport:
    campaign_id: str
    records: int = 0
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


class CampaignStore:
    """A directory of durable campaigns.

    With ``create=False`` the store is opened read-only-ish: a missing
    root raises :class:`StoreError` instead of being silently created
    — the right behavior for inspection paths (``store ls``/``export``,
    the service read endpoints) where a typo'd directory should be an
    error, not a fresh empty store.
    """

    def __init__(self, root, create: bool = True):
        self.root = Path(root)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise StoreError(f"no store directory at {self.root}")

    # -- layout ------------------------------------------------------------

    def campaign_dir(self, campaign_id: str) -> Path:
        return self.root / campaign_id

    def campaign_ids(self) -> List[str]:
        return sorted(child.name for child in self.root.iterdir()
                      if (child / "manifest.json").exists())

    def campaigns(self) -> List[CampaignManifest]:
        return [CampaignManifest.load(self.campaign_dir(campaign_id))
                for campaign_id in self.campaign_ids()]

    # -- opening for a run -------------------------------------------------

    def open(self, config, resume: bool = False) -> OpenCampaign:
        """Open (or create) the campaign *config* describes.

        Without *resume*, any journaled results are an error — a store
        never silently overwrites or extends finished work.  With
        *resume*, journaled indices below ``config.count`` are reused;
        a larger ``config.count`` tops the campaign up, a smaller one
        is refused as drift.
        """
        manifest = CampaignManifest.from_config(config)
        directory = self.campaign_dir(manifest.campaign_id)
        directory.mkdir(parents=True, exist_ok=True)

        existing: Optional[CampaignManifest] = None
        if (directory / "manifest.json").exists():
            existing = CampaignManifest.load(directory)
            if existing.identity() != manifest.identity():
                raise StoreMismatchError(
                    f"campaign {manifest.campaign_id}: stored identity "
                    f"{existing.identity()} != requested "
                    f"{manifest.identity()}")
            if config.count < existing.count:
                raise StoreMismatchError(
                    f"campaign {manifest.campaign_id}: requested "
                    f"count {config.count} shrinks the stored campaign "
                    f"({existing.count}); counts may only grow")

        report = journal_mod.replay(directory / JOURNAL_NAME)
        done = dict(report.records)
        if done and not resume:
            raise CampaignExistsError(
                f"campaign {manifest.campaign_id} already has "
                f"{len(done)} journaled results; pass resume=True "
                f"(--resume) to continue or top it up")
        stray = [index for index in done if index >= config.count]
        if stray:
            raise StoreMismatchError(
                f"campaign {manifest.campaign_id}: journal holds "
                f"indices {sorted(stray)[:5]}... beyond count "
                f"{config.count}")

        if existing is None or existing.count != manifest.count:
            manifest.save(directory)
        return OpenCampaign(
            manifest=manifest, directory=directory, done=done,
            journal=Journal(directory / JOURNAL_NAME),
            truncated_bytes=report.truncated_bytes)

    # -- reading back ------------------------------------------------------

    def results(self, campaign_id: str) -> List[InjectionResult]:
        """All journaled results, in global-index order."""
        directory = self.campaign_dir(campaign_id)
        if not directory.exists():
            raise StoreError(f"no campaign {campaign_id} in {self.root}")
        report = journal_mod.replay(directory / JOURNAL_NAME,
                                    truncate=False)
        return [result for _index, result
                in sorted(report.records, key=lambda pair: pair[0])]

    def load(self, config):
        """Stream a stored campaign back as a ``CampaignResult``.

        The campaign must be complete for the requested count — a
        partial campaign (killed run not yet resumed) is an error, so
        analysis never silently runs on a truncated result stream.
        """
        from repro.injection.campaign import CampaignResult
        manifest = CampaignManifest.from_config(config)
        directory = self.campaign_dir(manifest.campaign_id)
        report = journal_mod.replay(directory / JOURNAL_NAME,
                                    truncate=False)
        done = dict(report.records)
        missing = [index for index in range(config.count)
                   if index not in done]
        if missing:
            raise StoreError(
                f"campaign {manifest.campaign_id} is incomplete: "
                f"{len(missing)} of {config.count} targets missing "
                f"(first: {missing[:5]}); resume it first")
        out = CampaignResult(config=config)
        out.results.extend(done[index] for index in range(config.count))
        return out

    # -- maintenance -------------------------------------------------------

    def verify(self, campaign_id: str) -> VerifyReport:
        """Validate one campaign: manifest hash, checksums, coverage."""
        report = VerifyReport(campaign_id=campaign_id)
        directory = self.campaign_dir(campaign_id)
        try:
            manifest = CampaignManifest.load(directory)
        except ManifestError as exc:
            report.problems.append(str(exc))
            return report
        if manifest.campaign_id != campaign_id:
            report.problems.append(
                f"directory {campaign_id} holds manifest "
                f"{manifest.campaign_id}")
        try:
            replayed = journal_mod.replay(directory / JOURNAL_NAME,
                                          truncate=False)
        except JournalCorruption as exc:
            report.problems.append(str(exc))
            return report
        report.records = len(replayed.records)
        if replayed.truncated_bytes:
            report.problems.append(
                f"torn journal tail: {replayed.truncated_bytes} bytes "
                f"({replayed.torn_detail}); next resume repairs it")
        indices = {index for index, _result in replayed.records}
        missing = [index for index in range(manifest.count)
                   if index not in indices]
        if missing:
            report.problems.append(
                f"incomplete: {len(missing)} of {manifest.count} "
                f"targets missing (first: {missing[:5]})")
        return report

    def export(self, campaign_id: str, path) -> int:
        """Dump one campaign as plain result JSONL; returns the count."""
        from repro.analysis.export import dump_results
        return dump_results(self.results(campaign_id), str(path))
