"""Durable, crash-safe campaign result store.

The paper's 115,000+ injections took ~70 machine-days; results that
long in the making must survive crashes of the harness itself.  This
package is the persistence layer under `Campaign.run(store=...)`:

1. **manifest** (:mod:`repro.store.manifest`) — content-addressed
   campaign identity, so one store holds many campaigns and config
   drift is detected instead of mixing incompatible records;
2. **journal** (:mod:`repro.store.journal`) — a write-ahead JSONL log
   appending each result as it completes, with per-record checksums
   and torn-tail truncation on replay;
3. **store** (:mod:`repro.store.store`) — the directory layout plus
   query/verify/export;
4. **resume** (:mod:`repro.store.resume`) — checkpoint/resume and
   incremental top-up, bit-identical to an uninterrupted run;
5. **codec** (:mod:`repro.store.codec`) — the single
   result-to-JSON-and-back path (``analysis.export`` wraps it).
"""

from repro.store.journal import Journal, JournalCorruption, replay
from repro.store.manifest import CampaignManifest, ManifestError
from repro.store.store import (
    CampaignExistsError, CampaignStore, StoreError, StoreMismatchError,
)

__all__ = [
    "CampaignStore", "CampaignManifest", "Journal",
    "JournalCorruption", "replay", "ManifestError", "StoreError",
    "StoreMismatchError", "CampaignExistsError",
]
