"""Campaign manifests: content-addressed campaign identity.

A store holds many campaigns side by side; each is identified by a
hash of everything that determines its result stream — ``(arch, kind,
ops, seed, dump-loss probability, profile coverage, code version)``.
Two configs with the same identity produce bit-identical results, so
their journals are interchangeable; any drift in those fields changes
the identity and lands in a different campaign directory instead of
silently mixing incompatible records.

``count`` is deliberately **not** part of the identity: raising it
tops up an existing campaign (the per-target seed keys on the global
index, so targets ``0..N-1`` of a ``count=M > N`` campaign are exactly
the ``count=N`` campaign's targets).  The manifest records the largest
count ever requested, and shrinking it is refused as drift.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.store.codec import canonical_json

#: bump when the journal record layout or the identity derivation
#: changes; part of ``code_version``, so old stores are never misread
#: (format 2: manifests record the target prune policy; format 3:
#: journal records carry activation_instret/crash_instret; format 4:
#: the fault model joins campaign identity)
STORE_FORMAT = 4

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"


def code_version() -> str:
    """The writer's code identity (package version + store format)."""
    import repro
    return f"{repro.__version__}+fmt{STORE_FORMAT}"


class ManifestError(Exception):
    """A manifest is missing, corrupt, or contradicts its directory."""


@dataclass(frozen=True)
class CampaignManifest:
    """The durable description of one stored campaign."""

    arch: str
    kind: str                          # CampaignKind.value
    count: int                         # largest count ever requested
    ops: int
    seed: int
    dump_loss_probability: float
    profile_coverage: float
    code_version: str
    #: target prune policy ("none" | "dead" | "taint"); part of the
    #: identity — a pruned campaign draws a different target stream
    prune: str = "none"
    #: fault-model name (:mod:`repro.faults`); part of the identity —
    #: two campaigns differing only in fault model are different
    #: experiments
    fault_model: str = "single-bit"

    @classmethod
    def from_config(cls, config) -> "CampaignManifest":
        """Build from an ``injection.campaign.CampaignConfig``."""
        return cls(
            arch=config.arch, kind=config.kind.value,
            count=config.count, ops=config.ops, seed=config.seed,
            dump_loss_probability=config.dump_loss_probability,
            profile_coverage=config.profile_coverage,
            code_version=code_version(),
            prune=getattr(config, "prune", "none"),
            fault_model=getattr(config, "fault_model", "single-bit"))

    # -- identity ----------------------------------------------------------

    def _hash_payload(self) -> dict:
        """The dict the identity and hash derivations cover.

        The default ``single-bit`` model serializes to the
        pre-fault-model (format 3) shape — the field is dropped — so
        legacy single-bit manifests keep their campaign ids and verify
        against their stored hashes unchanged; any other model joins
        the payload and forks the identity.
        """
        payload = dataclasses.asdict(self)
        if payload["fault_model"] == "single-bit":
            payload.pop("fault_model")
        return payload

    def identity(self) -> dict:
        """Everything that pins the result stream (count excluded)."""
        payload = self._hash_payload()
        payload.pop("count")
        return payload

    @property
    def campaign_id(self) -> str:
        digest = hashlib.sha256(
            canonical_json(self.identity()).encode("utf-8"))
        return f"{self.kind}-{self.arch}-{digest.hexdigest()[:12]}"

    @property
    def manifest_hash(self) -> str:
        """Covers *all* fields (count included) — drift detection."""
        digest = hashlib.sha256(
            canonical_json(self._hash_payload()).encode("utf-8"))
        return digest.hexdigest()

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["campaign_id"] = self.campaign_id
        payload["manifest_hash"] = self.manifest_hash
        return payload

    def save(self, directory: Path) -> None:
        path = Path(directory) / MANIFEST_NAME
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self.to_dict(), indent=2,
                                  sort_keys=True) + "\n",
                       encoding="utf-8")
        tmp.replace(path)              # atomic on POSIX

    @classmethod
    def load(cls, directory: Path) -> "CampaignManifest":
        path = Path(directory) / MANIFEST_NAME
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ManifestError(f"no manifest at {path}")
        except (OSError, json.JSONDecodeError) as exc:
            raise ManifestError(f"unreadable manifest at {path}: {exc}")
        stored_hash = payload.pop("manifest_hash", None)
        payload.pop("campaign_id", None)
        if "prune" not in payload:
            raise ManifestError(
                f"legacy manifest at {path}: written before store "
                f"format 2 (no prune policy recorded); re-run the "
                f"campaign into a fresh store")
        try:
            manifest = cls(**payload)
        except TypeError as exc:
            raise ManifestError(f"malformed manifest at {path}: {exc}")
        if stored_hash != manifest.manifest_hash:
            raise ManifestError(
                f"manifest hash mismatch at {path}: stored "
                f"{stored_hash!r}, recomputed {manifest.manifest_hash!r}")
        return manifest
