"""Benchmark programs modelled on the UnixBench suite.

Every program issues syscalls into the simulated kernel and validates
every result it can (return values, byte-for-byte data, checksums).  A
failed validation without a crash is a **fail-silence violation** — the
OS or application let wrong data out (paper Table 2).

Programs are deterministic given their seed, which is what makes the
clean-run activation screen sound: an injected run is bit-identical to
the clean run up to the moment the error is activated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.kernel.abi import Syscall


@dataclass
class FSVEvent:
    """One observed fail-silence violation."""

    program: str
    op_index: int
    expected: str
    actual: str


class BenchProgram:
    """Base class: one user task's syscall-driving program."""

    name = "bench"

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)
        self.op_index = 0
        self.fsv_events: List[FSVEvent] = []

    # -- cloning -----------------------------------------------------------

    def clone(self) -> "BenchProgram":
        """An independent twin resuming from this program's exact state.

        Campaigns set a program up once and hand every injection run
        its own copy; ``copy.deepcopy`` spends most of its time
        re-discovering that almost everything here is immutable
        (ints, bytes, strings, the class template).  This walks the
        instance state once: RNGs resume from the captured state,
        sub-programs clone recursively, mutable lists (cursor state
        like ``fsv_events``) are copied shallowly — their elements are
        never mutated in place — and everything else is shared.
        """
        dup = self.__class__.__new__(self.__class__)
        for key, value in self.__dict__.items():
            if isinstance(value, random.Random):
                rng = random.Random()
                rng.setstate(value.getstate())
                dup.__dict__[key] = rng
            elif isinstance(value, BenchProgram):
                dup.__dict__[key] = value.clone()
            elif isinstance(value, list):
                dup.__dict__[key] = list(value)
            else:
                dup.__dict__[key] = value
        return dup

    # -- hooks ------------------------------------------------------------

    def setup(self, machine, task) -> None:
        """Pre-injection preparation (seed files, buffers)."""

    def step(self, machine, task) -> None:
        """Issue one operation and validate its result."""
        raise NotImplementedError

    # -- helpers -----------------------------------------------------------

    def _fsv(self, expected: str, actual: str) -> None:
        self.fsv_events.append(
            FSVEvent(self.name, self.op_index, expected, actual))

    def _check(self, condition: bool, expected: str, actual: str) -> None:
        if not condition:
            self._fsv(expected, actual)


def clone_programs(programs: Dict[int, BenchProgram]
                   ) -> Dict[int, BenchProgram]:
    """Clone a pid->program dict, preserving any aliasing.

    ``clone()`` runs once per distinct program object and pids that
    shared a program keep sharing the clone — the same object graph
    ``copy.deepcopy``'s memo would have produced.  Both the injector
    and the checkpoint ladder hand every run its own program set this
    way.
    """
    clones: Dict[int, BenchProgram] = {}
    out: Dict[int, BenchProgram] = {}
    for pid, program in programs.items():
        if id(program) not in clones:
            clones[id(program)] = program.clone()
        out[pid] = clones[id(program)]
    return out


def _pattern(seed: int, length: int) -> bytes:
    """Deterministic data pattern (dense: every byte meaningful)."""
    return bytes((seed * 131 + index * 7 + 3) & 0xFF
                 for index in range(length))


class FsTime(BenchProgram):
    """UnixBench fstime: file write/read/copy with checksums."""

    name = "fstime"

    def __init__(self, seed: int = 0, ino: int = 0, io_size: int = 120):
        super().__init__(seed)
        self.ino = ino
        self.io_size = io_size
        self.fd: Optional[int] = None
        self.expected = b""

    def setup(self, machine, task) -> None:
        self.expected = _pattern(self.rng.randrange(256), self.io_size)
        machine.write_user(task, 0, self.expected)
        self.fd = machine.syscall(Syscall.OPEN, self.ino)
        self._check(self.fd < 0x80000000, "fd", f"open={self.fd:#x}")
        written = machine.syscall(Syscall.WRITE, self.fd, task.user_buf,
                                  self.io_size)
        self._check(written == self.io_size, str(self.io_size),
                    f"write={written}")

    def step(self, machine, task) -> None:
        self.op_index += 1
        which = self.op_index % 3
        if which == 0:
            # rewrite with a fresh pattern
            self.expected = _pattern(self.rng.randrange(256),
                                     self.io_size)
            machine.write_user(task, 0, self.expected)
            machine.syscall(Syscall.LSEEK, self.fd, 0)
            written = machine.syscall(Syscall.WRITE, self.fd,
                                      task.user_buf, self.io_size)
            self._check(written == self.io_size, str(self.io_size),
                        f"write={written}")
        elif which == 1:
            machine.syscall(Syscall.LSEEK, self.fd, 0)
            count = machine.syscall(Syscall.READ, self.fd,
                                    task.user_buf + 0x800, self.io_size)
            self._check(count == self.io_size, str(self.io_size),
                        f"read={count}")
            if self.op_index % 6 == 1:
                # UnixBench verifies sampled outputs, not every byte
                data = machine.read_user(task, 0x800, self.io_size)
                self._check(data == self.expected, "file data",
                            "corrupted")
        else:
            flushed = machine.syscall(Syscall.FSYNC, self.fd)
            self._check(flushed < 0x80000000, "fsync>=0",
                        f"fsync={flushed:#x}")


class PipeThroughput(BenchProgram):
    """UnixBench pipe: ring-buffer write/read round trips."""

    name = "pipe"

    def __init__(self, seed: int = 0, chunk: int = 48):
        super().__init__(seed)
        self.chunk = chunk

    def step(self, machine, task) -> None:
        self.op_index += 1
        payload = _pattern(self.op_index & 0xFF, self.chunk)
        machine.write_user(task, 0x400, payload)
        written = machine.syscall(Syscall.PIPE_WRITE,
                                  task.user_buf + 0x400, self.chunk)
        self._check(written == self.chunk, str(self.chunk),
                    f"pipe_write={written}")
        count = machine.syscall(Syscall.PIPE_READ,
                                task.user_buf + 0xC00, self.chunk)
        self._check(count == self.chunk, str(self.chunk),
                    f"pipe_read={count}")
        if self.op_index % 6 == 0:
            data = machine.read_user(task, 0xC00, self.chunk)
            self._check(data == payload, "pipe data", "corrupted")


class SyscallLoop(BenchProgram):
    """UnixBench syscall: minimal syscall round trips."""

    name = "syscall"

    def step(self, machine, task) -> None:
        self.op_index += 1
        pid = machine.syscall(Syscall.GETPID)
        self._check(pid == task.pid, str(task.pid), f"getpid={pid}")
        if self.op_index % 4 == 0:
            result = machine.syscall(Syscall.BRK)
            self._check(result != 0, "brk!=0", "brk=0")


class Context1(BenchProgram):
    """UnixBench context1: force scheduling activity."""

    name = "context1"

    def step(self, machine, task) -> None:
        self.op_index += 1
        result = machine.syscall(Syscall.SCHED_YIELD)
        self._check(result == 0, "0", f"yield={result}")
        pid = machine.syscall(Syscall.GETPID)
        self._check(pid == task.pid, str(task.pid), f"getpid={pid}")


class NetLoop(BenchProgram):
    """Loopback send/recv with checksum verification in the kernel."""

    name = "netloop"

    def __init__(self, seed: int = 0, size: int = 64):
        super().__init__(seed)
        self.size = size

    def step(self, machine, task) -> None:
        self.op_index += 1
        payload = _pattern((self.op_index * 5 + 1) & 0xFF, self.size)
        machine.write_user(task, 0x500, payload)
        sent = machine.syscall(Syscall.SEND, task.user_buf + 0x500,
                               self.size)
        self._check(sent == self.size, str(self.size), f"send={sent}")
        count = machine.syscall(Syscall.RECV, task.user_buf + 0xE00,
                                self.size)
        self._check(count == self.size, str(self.size), f"recv={count}")
        if self.op_index % 6 == 0:
            data = machine.read_user(task, 0xE00, self.size)
            self._check(data == payload, "net data", "corrupted")


class PathLookup(BenchProgram):
    """Open-by-pathname loop: drives the dentry cache's pointer-chained
    hash walk (real UnixBench's fs/shell scripts stat constantly)."""

    name = "pathlookup"

    NAMES = (b"etc/passwd", b"var/log.txt", b"tmp/a", b"usr/lib.so",
             b"etc/hosts", b"tmp/bb")

    def step(self, machine, task) -> None:
        self.op_index += 1
        name = self.NAMES[self.op_index % len(self.NAMES)]
        machine.write_user(task, 0x600, name)
        fd = machine.syscall(Syscall.OPEN_PATH, task.user_buf + 0x600,
                             len(name))
        self._check(fd < 0x80000000, "fd", f"open_path={fd:#x}")
        if fd < 0x80000000:
            closed = machine.syscall(Syscall.CLOSE, fd)
            self._check(closed == 0, "0", f"close={closed:#x}")


class ShellMix(BenchProgram):
    """UnixBench shell-ish mix: files + pipes + lookups + syscalls."""

    name = "shellmix"

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self._fs = FsTime(seed, ino=1, io_size=120)
        self._pipe = PipeThroughput(seed + 1, chunk=40)
        self._sys = SyscallLoop(seed + 2)
        self._path = PathLookup(seed + 3)

    def setup(self, machine, task) -> None:
        self._fs.setup(machine, task)

    def step(self, machine, task) -> None:
        self.op_index += 1
        sub = (self._fs, self._pipe, self._sys,
               self._path)[self.op_index % 4]
        sub.step(machine, task)

    @property
    def all_fsv_events(self) -> List[FSVEvent]:
        return (self.fsv_events + self._fs.fsv_events
                + self._pipe.fsv_events + self._sys.fsv_events
                + self._path.fsv_events)


#: the standard mix assigned to the three user tasks
def default_mix(seed: int) -> List[BenchProgram]:
    return [
        FsTime(seed, ino=0),
        PipeThroughput(seed + 17),
        ShellMix(seed + 34),
    ]


def collect_fsv(programs: List[BenchProgram]) -> List[FSVEvent]:
    events: List[FSVEvent] = []
    for program in programs:
        if isinstance(program, ShellMix):
            events.extend(program.all_fsv_events)
        else:
            events.extend(program.fsv_events)
    return events
