"""UnixBench-like workload: programs, driver, profiler, clean-run probe.

The paper uses the UnixBench suite to (a) exercise the kernel functions
that represent at least 95% of kernel usage and (b) detect fail-silence
violations through instrumented output checks.  This package provides
the same two capabilities against the simulated kernel:

* :mod:`repro.workload.programs` — syscall-driving benchmark programs
  (fstime, pipe throughput, syscall loop, context switching, shell mix)
  each validating its own results;
* :mod:`repro.workload.driver` — the executive that interleaves user
  programs and kernel threads under the kernel's own scheduler;
* :mod:`repro.workload.profiler` — kernprof-style sampling profiler
  used to pick code-injection targets;
* :mod:`repro.workload.probe` — the clean-run recorder whose access
  trace and executed-address set drive activation screening.
"""

from repro.workload.driver import UnixBenchDriver, WorkloadResult
from repro.workload.probe import CleanRunProbe, probe_clean_run
from repro.workload.profiler import FunctionProfile, profile_kernel

__all__ = [
    "UnixBenchDriver", "WorkloadResult",
    "CleanRunProbe", "probe_clean_run",
    "FunctionProfile", "profile_kernel",
]
