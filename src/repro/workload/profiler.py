"""kernprof-style sampling profiler for code-injection target selection.

The paper profiles the kernel under UnixBench and selects the most
frequently used functions representing **at least 95% of kernel usage**
as code-injection targets (Section 3.5).  This module reproduces that:
sample the program counter during a clean workload run, attribute
samples to kernel functions, and return the hot list with its coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.machine.machine import Machine, MachineConfig
from repro.workload.driver import UnixBenchDriver


@dataclass
class FunctionProfile:
    arch: str
    samples: int
    counts: Dict[str, int]

    def hot_functions(self, coverage: float = 0.95
                      ) -> List[Tuple[str, float]]:
        """Smallest prefix of functions covering *coverage* of samples.

        Returns (name, fraction) pairs, heaviest first.
        """
        total = sum(self.counts.values()) or 1
        ranked = sorted(self.counts.items(), key=lambda kv: -kv[1])
        out: List[Tuple[str, float]] = []
        accumulated = 0.0
        for name, count in ranked:
            fraction = count / total
            out.append((name, fraction))
            accumulated += fraction
            if accumulated >= coverage:
                break
        return out


def profile_kernel(arch: str, seed: int = 0, ops: int = 60,
                   sample_every: int = 23) -> FunctionProfile:
    """Sample the PC during a clean run and attribute to functions."""
    # PC sampling wraps cpu.step, which compiled blocks bypass — the
    # profiler must single-step to see every instruction boundary
    machine = Machine(arch, config=MachineConfig(exec_mode="step"))
    cpu = machine.cpu
    image = machine.image

    # sorted function ranges for fast attribution
    ranges = sorted((info.addr, info.addr + info.size, name)
                    for name, info in image.functions.items())
    starts = [entry[0] for entry in ranges]

    counts: Dict[str, int] = {}
    state = {"countdown": sample_every, "samples": 0}
    original_step = cpu.step

    import bisect

    def attributed(pc: int) -> str:
        position = bisect.bisect_right(starts, pc) - 1
        if position >= 0:
            start, end, name = ranges[position]
            if start <= pc < end:
                return name
        return "(outside-kernel-text)"

    def step():
        state["countdown"] -= 1
        if state["countdown"] <= 0:
            state["countdown"] = sample_every
            state["samples"] += 1
            pc = cpu.eip if arch == "x86" else cpu.pc
            name = attributed(pc)
            counts[name] = counts.get(name, 0) + 1
        original_step()

    cpu.step = step
    machine.boot()
    driver = UnixBenchDriver(machine, seed=seed)
    driver.setup()
    driver.run(ops)
    return FunctionProfile(arch=arch, samples=state["samples"],
                           counts=counts)
