"""Clean-run probe: records what an unperturbed workload run touches.

One instrumented run per (architecture, seed, ops) yields:

* the **data access trace** — every load/store (instret, addr, width,
  kind) — used to decide *activation* of stack and data injections
  without a full simulation each (paper Section 3.3: the pre-generated
  error is "activated" when the watchpoint would have fired);
* the **executed-address set** — used to decide activation of code
  injections (a breakpoint at a never-fetched address never fires);
* the **first-execution-instret map** — for every address fetched
  inside the monitored window (after ``driver.setup()``), the instret
  at which its first fetch began; code injections can only activate at
  that instant, so it both tightens the activation screen (addresses
  executed only during boot can never fire a breakpoint in the
  monitored window) and tells the checkpoint dispatcher
  (:mod:`repro.checkpoint`) how far it may fast-forward;
* run-length figures (instret, cycles) used to place injection instants
  uniformly inside the monitoring window.

Soundness: programs and scheduler are deterministic for a given seed,
and an injected run is identical to the clean run up to the moment of
activation, so the clean trace decides activation exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.machine.machine import Machine, MachineConfig
from repro.workload.driver import UnixBenchDriver

#: (instret, addr, width, kind) where kind is "r" or "w"
AccessRecord = Tuple[int, int, int, str]


@dataclass
class CleanRunProbe:
    arch: str
    seed: int
    ops: int
    accesses: List[AccessRecord]
    executed_pcs: Set[int]
    #: addr -> instret at which its first *window* fetch began (the
    #: retirement counter *before* the instruction executed); boot-time
    #: fetches are excluded, so an address only here when the monitored
    #: workload actually reaches it
    first_executed: Dict[int, int]
    boot_instret: int
    total_instret: int
    total_cycles: int
    fsv_clean: bool

    _index: dict = field(default_factory=dict, repr=False)

    def _build_index(self) -> None:
        """Per-byte index: addr -> instret-sorted list of records."""
        index: dict = {}
        for record in self.accesses:
            _, addr, width, _ = record
            for byte in range(addr, addr + width):
                index.setdefault(byte, []).append(record)
        # records were appended in instret order already
        self._index = index

    def first_access_after(self, instret: int, addr: int,
                           length: int = 1
                           ) -> Optional[AccessRecord]:
        """First access overlapping [addr, addr+length) after instret."""
        if not self._index and self.accesses:
            self._build_index()
        import bisect
        best: Optional[AccessRecord] = None
        for byte in range(addr, addr + length):
            records = self._index.get(byte)
            if not records:
                continue
            position = bisect.bisect_left(records, (instret,))
            if position < len(records):
                candidate = records[position]
                if best is None or candidate[0] < best[0]:
                    best = candidate
        return best

    def pc_executed(self, addr: int) -> bool:
        return addr in self.executed_pcs

    def first_executed_instret(self, addr: int) -> Optional[int]:
        """Instret before the first *window* fetch of *addr*.

        ``None`` when the monitored workload never fetches the address
        — including addresses executed only during boot, which
        ``pc_executed`` reports as executed but which can never trip a
        breakpoint installed after the fork point.
        """
        return self.first_executed.get(addr)

    def stack_runtime_ranges(self, allocations: dict,
                             window: int = 256) -> dict:
        """Stack sampling range per task.

        *allocations* maps pid -> (base, top) of the allocated 8 KiB
        stack.  The paper's generator picks random locations in the
        active stack area of a randomly chosen kernel process; we use a
        fixed *window* below each stack top — the same rule on both
        architectures, so differences in activation/manifestation come
        from how densely each architecture's frames populate it.  (The
        measured runtime stack is ~2x deeper on the G4, matching the
        paper's Section 5.1 observation.)
        """
        out = {}
        for pid, (base, top) in allocations.items():
            out[pid] = (max(base, top - window), top)
        return out

    def measured_stack_depth(self, allocations: dict) -> dict:
        """Deepest touched stack extent per task (diagnostics/tests)."""
        deepest = {pid: top for pid, (_base, top) in allocations.items()}
        for _instret, addr, _width, _kind in self.accesses:
            for pid, (base, top) in allocations.items():
                if base <= addr < top and addr < deepest[pid]:
                    deepest[pid] = addr
        return {pid: allocations[pid][1] - deepest[pid]
                for pid in allocations}


def _instrument(machine: Machine, accesses: List[AccessRecord],
                executed: Set[int],
                first_cell: List[Dict[int, int]]) -> None:
    """*first_cell* is a one-element list holding the first-execution
    map currently being recorded into; swapping the element lets the
    probe discard boot-time fetches once the window opens."""
    cpu = machine.cpu
    if machine.arch == "x86":
        original_load = cpu.load
        original_store = cpu.store
        original_step = cpu.step

        def load(addr, width, seg=3):
            accesses.append((cpu.instret, addr & 0xFFFFFFFF, width, "r"))
            return original_load(addr, width, seg)

        def store(addr, value, width, seg=3):
            accesses.append((cpu.instret, addr & 0xFFFFFFFF, width, "w"))
            return original_store(addr, value, width, seg)

        def step():
            pc = cpu.eip
            executed.add(pc)
            first = first_cell[0]
            if pc not in first:
                first[pc] = cpu.instret
            original_step()
    else:
        original_load = cpu.load
        original_store = cpu.store
        original_step = cpu.step

        def load(addr, width):
            accesses.append((cpu.instret, addr & 0xFFFFFFFF, width, "r"))
            return original_load(addr, width)

        def store(addr, value, width):
            accesses.append((cpu.instret, addr & 0xFFFFFFFF, width, "w"))
            return original_store(addr, value, width)

        def step():
            pc = cpu.pc & 0xFFFFFFFC
            executed.add(pc)
            first = first_cell[0]
            if pc not in first:
                first[pc] = cpu.instret
            original_step()

    cpu.load = load
    cpu.store = store
    cpu.step = step


def probe_clean_run(arch: str, seed: int = 0, ops: int = 60
                    ) -> CleanRunProbe:
    """Run the workload once, instrumented, and record everything."""
    # the instrumentation wraps cpu.load/store/step, which compiled
    # blocks bypass — the probe must observe every single instruction
    machine = Machine(arch, config=MachineConfig(exec_mode="step"))
    accesses: List[AccessRecord] = []
    executed: Set[int] = set()
    first_cell: List[Dict[int, int]] = [{}]
    _instrument(machine, accesses, executed, first_cell)
    machine.boot()
    driver = UnixBenchDriver(machine, seed=seed)
    driver.setup()
    boot_instret = machine.cpu.instret
    # window opens here: discard boot-time first-fetch records so
    # first_executed covers exactly what an injected run can reach
    first_cell[0] = {}
    result = driver.run(ops)
    return CleanRunProbe(
        arch=arch, seed=seed, ops=ops,
        accesses=accesses,
        executed_pcs=executed,
        first_executed=first_cell[0],
        boot_instret=boot_instret,
        total_instret=machine.cpu.instret,
        total_cycles=machine.cpu.cycles,
        fsv_clean=result.fail_silence_violated,
    )
