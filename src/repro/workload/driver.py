"""The workload executive.

Interleaves the user benchmark programs and the kernel threads under
the simulated kernel's own scheduler: timer interrupts are delivered
every few operations, ``schedule()`` (running as compiled kernel code)
picks the next task, and the machine context-switches accordingly.
User tasks run their benchmark program; kernel threads get one pass of
their entry function, exactly how kupdate/kjournald share the CPU on
the paper's target nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.kernel.abi import Syscall
from repro.machine.machine import Machine
from repro.workload.programs import (
    BenchProgram, FSVEvent, collect_fsv, default_mix,
)


@dataclass
class WorkloadResult:
    """What a monitored workload run observed (no crash/hang)."""

    completed_ops: int
    fsv_events: List[FSVEvent] = field(default_factory=list)
    syscalls: int = 0
    timer_ticks: int = 0

    @property
    def fail_silence_violated(self) -> bool:
        return bool(self.fsv_events)


class UnixBenchDriver:
    """Drives one machine through the benchmark mix."""

    #: timer interrupt every N user operations (10 ms quantum pacing)
    OPS_PER_TICK = 8

    def __init__(self, machine: Machine, seed: int = 0,
                 programs: Optional[Dict[int, BenchProgram]] = None):
        self.machine = machine
        self.seed = seed
        user_pids = [pid for pid, task in machine.tasks.items()
                     if task.kind == "user" and pid != 0]
        if programs is None:
            mix = default_mix(seed)
            programs = {pid: mix[index % len(mix)]
                        for index, pid in enumerate(user_pids)}
        self.programs = programs
        self._ops_since_tick = 0
        self.completed_ops = 0
        #: scheduling rounds consumed so far; instance state (not a
        #: ``run()`` local) so a checkpoint-dispatched run resumes the
        #: livelock budget exactly where the clean run left it — a
        #: livelock detected from a checkpoint fires at the same round,
        #: hence the same cycle count, as one detected from boot
        self._rounds = 0

    # -- phases ------------------------------------------------------------

    def setup(self) -> None:
        """Pre-injection preparation phase (runs before monitoring)."""
        machine = self.machine
        for pid, program in self.programs.items():
            machine._switch_to(pid)
            program.setup(machine, machine.tasks[pid])
        machine._switch_to(0)

    def run(self, ops: int = 60, boundary=None) -> WorkloadResult:
        """Run *ops* user operations under scheduler control.

        Crashes and hangs propagate as exceptions; a normal return
        means the system survived the monitoring window.

        *boundary*, when given, is called (no arguments) at the top of
        every scheduling round — between kernel calls, never inside
        one, so the machine is at an architecturally quiescent point.
        The checkpoint ladder (:mod:`repro.checkpoint`) captures its
        snapshots there.
        """
        machine = self.machine
        max_rounds = ops * 40 + 400
        while self.completed_ops < ops:
            if boundary is not None:
                boundary()
            self._rounds += 1
            if self._rounds > max_rounds:
                # scheduling livelock: user tasks never run again —
                # "system resources exhausted" (paper Table 2: Hang)
                from repro.machine.events import HangDetected
                raise HangDetected("scheduler", machine.cpu.cycles,
                                   "no user progress (livelock)")
            pid = machine.current_pid
            task = machine.tasks[pid]
            if task.kind == "kthread":
                machine.run_kthread(pid)
                machine.syscall(Syscall.SCHED_YIELD)
                machine.deliver_timer()
                continue
            program = self.programs.get(pid)
            if program is None:
                # init task (pid 0) idles briefly, then yields
                machine.syscall(Syscall.SCHED_YIELD)
                machine.deliver_timer()
                continue
            program.step(machine, task)
            self.completed_ops += 1
            machine.think(500 + (self.completed_ops * 97) % 2500)
            self._ops_since_tick += 1
            if self._ops_since_tick >= self.OPS_PER_TICK:
                self._ops_since_tick = 0
                machine.deliver_timer()
        return WorkloadResult(
            completed_ops=self.completed_ops,
            fsv_events=collect_fsv(list(self.programs.values())),
            syscalls=machine.syscalls_completed,
            timer_ticks=machine.timer_ticks,
        )


def run_clean_workload(arch: str, seed: int = 0, ops: int = 60
                       ) -> WorkloadResult:
    """Convenience: boot a machine and run the workload unperturbed."""
    machine = Machine(arch)
    machine.boot()
    driver = UnixBenchDriver(machine, seed=seed)
    driver.setup()
    return driver.run(ops)
