"""Static sensitivity report: per-bit predictions and summaries.

A :class:`StaticSensitivityReport` is the static-analysis counterpart
of a dynamic ``CampaignResult``: for every (instruction address, bit)
in the kernel text it records the encoding corruption class and the
predicted outcome.  The histogram digest is pinned in CI exactly like
``tests/data/campaign_digests.json`` pins dynamic outcomes.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.static.corruption import CorruptionClass
from repro.static.taint import VERDICTS


class PredictedOutcome(enum.Enum):
    """Static analog of the dynamic outcome taxonomy.

    The dynamic taxonomy distinguishes crash registration and error
    propagation; statically only three things are decidable: the bit
    sits in code that cannot execute, the corruption is provably
    harmless, or it must be assumed to manifest.
    """

    NOT_ACTIVATED = "not-activated"
    NOT_MANIFESTED = "not-manifested"
    MANIFESTED = "manifested"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class BitPrediction:
    """Prediction for one (address, bit) in the text section."""

    addr: int
    bit: int
    corruption: CorruptionClass
    outcome: PredictedOutcome
    #: taint verdict for pure-dataflow substitutions ("sink" |
    #: "dead" | "escape"); ``None`` when the decision never reached
    #: the taint engine
    verdict: Optional[str] = None
    #: kind of the nearest sink the taint reached (see
    #: :mod:`repro.static.sinks`)
    sink: Optional[str] = None
    #: static distance-to-sink bound, in instructions
    distance: Optional[int] = None
    #: evidence chain: corruption address, block starts along the
    #: shortest discovered route, sink address
    evidence: Tuple[int, ...] = ()
    #: the taint death proof also holds under the dynamic fault
    #: model: safe to skip under ``--prune=taint``
    taint_prunable: bool = False

    @property
    def prunable(self) -> bool:
        """Provably-safe to skip: the flip cannot change behaviour.

        Only decode-identical flips and statically-unreachable code
        qualify — *not* dead-value writes, whose proof depends on the
        conservative liveness model.
        """
        return (self.corruption is CorruptionClass.NO_CHANGE
                or self.outcome is PredictedOutcome.NOT_ACTIVATED)


@dataclass
class StaticSensitivityReport:
    """Full static analysis of one kernel image."""

    arch: str
    text_bytes: int
    insn_count: int
    function_count: int
    block_count: int
    unreachable_block_count: int
    predictions: Dict[Tuple[int, int], BitPrediction] \
        = field(default_factory=dict)

    @property
    def bit_count(self) -> int:
        return len(self.predictions)

    @property
    def class_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {c.value: 0 for c in CorruptionClass}
        for pred in self.predictions.values():
            counts[pred.corruption.value] += 1
        return counts

    @property
    def outcome_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {o.value: 0 for o in PredictedOutcome}
        for pred in self.predictions.values():
            counts[pred.outcome.value] += 1
        return counts

    @property
    def verdict_counts(self) -> Dict[str, int]:
        """Taint verdict histogram ("none" = never reached taint)."""
        counts: Dict[str, int] = {v: 0 for v in VERDICTS}
        counts["none"] = 0
        for pred in self.predictions.values():
            counts[pred.verdict or "none"] += 1
        return counts

    @property
    def sink_counts(self) -> Dict[str, int]:
        """Nearest-sink-kind histogram over sink-verdict bits."""
        counts: Dict[str, int] = {}
        for pred in self.predictions.values():
            if pred.sink is not None:
                counts[pred.sink] = counts.get(pred.sink, 0) + 1
        return counts

    @property
    def dead_bits(self) -> FrozenSet[Tuple[int, int]]:
        """The prunable (addr, bit) pairs (see BitPrediction.prunable)."""
        return frozenset(key for key, pred in self.predictions.items()
                         if pred.prunable)

    @property
    def taint_masked_bits(self) -> FrozenSet[Tuple[int, int]]:
        """The (addr, bit) pairs whose corruption the taint engine
        proves masked *and* whose proof survives the dynamic fault
        model (``BitPrediction.taint_prunable``)."""
        return frozenset(key for key, pred in self.predictions.items()
                         if pred.taint_prunable)

    @property
    def predicted_manifestation_rate(self) -> float:
        """P(manifest | activated) as the paper defines it: among
        bits the workload could activate (reachable code), the
        fraction predicted to manifest."""
        activated = [p for p in self.predictions.values()
                     if p.outcome is not PredictedOutcome.NOT_ACTIVATED]
        if not activated:
            return 0.0
        manifested = sum(1 for p in activated
                         if p.outcome is PredictedOutcome.MANIFESTED)
        return manifested / len(activated)

    def lookup(self, addr: int, bit: int) -> BitPrediction:
        return self.predictions[(addr, bit)]

    # -- digests ------------------------------------------------------

    def histogram(self) -> Dict[str, object]:
        """Canonical summary used for the pinned CI digest (v2: the
        taint verdict/sink histograms and the taint-prunable count
        joined in PR 9)."""
        return {
            "arch": self.arch,
            "text_bytes": self.text_bytes,
            "insn_count": self.insn_count,
            "function_count": self.function_count,
            "block_count": self.block_count,
            "unreachable_block_count": self.unreachable_block_count,
            "bit_count": self.bit_count,
            "class_counts": self.class_counts,
            "outcome_counts": self.outcome_counts,
            "verdict_counts": self.verdict_counts,
            "sink_counts": self.sink_counts,
            "taint_masked": len(self.taint_masked_bits),
        }

    def digest(self) -> str:
        canonical = json.dumps(self.histogram(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    # -- rendering ----------------------------------------------------

    def render(self) -> str:
        lines: List[str] = []
        lines.append(f"static sensitivity: {self.arch}")
        lines.append(f"  text: {self.text_bytes} bytes, "
                     f"{self.insn_count} insns, "
                     f"{self.function_count} functions")
        lines.append(f"  cfg: {self.block_count} blocks, "
                     f"{self.unreachable_block_count} unreachable")
        lines.append(f"  bits analyzed: {self.bit_count}")
        lines.append("  corruption classes:")
        for name, count in sorted(self.class_counts.items(),
                                  key=lambda kv: -kv[1]):
            if count:
                pct = 100.0 * count / max(1, self.bit_count)
                lines.append(f"    {name:<13} {count:>8}  ({pct:5.1f}%)")
        lines.append("  predicted outcomes:")
        for name, count in sorted(self.outcome_counts.items(),
                                  key=lambda kv: -kv[1]):
            pct = 100.0 * count / max(1, self.bit_count)
            lines.append(f"    {name:<14} {count:>8}  ({pct:5.1f}%)")
        verdicts = self.verdict_counts
        if any(verdicts[v] for v in VERDICTS):
            lines.append("  taint verdicts (pure-dataflow bits):")
            for name in VERDICTS:
                count = verdicts[name]
                if count:
                    pct = 100.0 * count / max(1, self.bit_count)
                    lines.append(
                        f"    {name:<14} {count:>8}  ({pct:5.1f}%)")
            sinks = self.sink_counts
            if sinks:
                lines.append("  nearest sinks:")
                for name, count in sorted(sinks.items(),
                                          key=lambda kv: -kv[1]):
                    lines.append(f"    {name:<16} {count:>8}")
        rate = self.predicted_manifestation_rate
        lines.append(f"  predicted manifestation rate "
                     f"(activated bits): {100.0 * rate:.1f}%")
        lines.append(f"  prunable dead bits: {len(self.dead_bits)}")
        taint_masked = len(self.taint_masked_bits)
        if taint_masked:
            lines.append(f"  taint-proven masked bits: {taint_masked}")
        return "\n".join(lines)


def compare_rates(reports: Iterable[StaticSensitivityReport]) -> str:
    """One-line-per-arch comparison of predicted manifestation rates."""
    lines = ["predicted manifestation rate by arch:"]
    for report in reports:
        rate = report.predicted_manifestation_rate
        lines.append(f"  {report.arch:<4} {100.0 * rate:5.1f}%")
    return "\n".join(lines)
