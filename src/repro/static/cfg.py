"""Cross-ISA control-flow graphs over the decoded kernel text.

The linker records every function's exact instruction boundaries
(``FunctionInfo.insn_addrs``), so the CFG builder never has to guess
where instructions start: it decodes each address with the same
decoder the simulated machine uses (``x86.decoder.decode`` over the
raw bytes, ``ppc.decoder.decode`` over big-endian words), asks
:mod:`repro.static.effects` how each instruction terminates, and
splits functions into basic blocks at branch targets and after
terminators.

Reachability is intra-function, from the function entry.  Every
function is a root: the workload dispatches syscalls and traps
dynamically, so no whole-program dead-function claim is made.  A
function containing an indirect jump (``jmp r/m`` / ``bcctr``) has
every block conservatively marked reachable — the target set is
statically unknown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.kcc.linker import KernelImage
from repro.ppc import decoder as pdec
from repro.ppc.insn import PPCInstr
from repro.static.effects import (
    InsnEffects, KIND_BRANCH, KIND_CALL, KIND_JUMP, insn_effects,
)
from repro.x86 import decoder as xdec
from repro.x86.insn import Instr

AnyInstr = Union[Instr, PPCInstr]


@dataclass
class InsnNode:
    """One decoded instruction inside a basic block."""

    addr: int
    length: int
    insn: AnyInstr
    effects: InsnEffects


@dataclass
class BasicBlock:
    """Maximal straight-line run of instructions."""

    start: int
    insns: List[InsnNode] = field(default_factory=list)
    #: intra-function successor block start addresses
    succs: List[int] = field(default_factory=list)

    @property
    def end(self) -> int:
        last = self.insns[-1]
        return last.addr + last.length

    @property
    def terminator(self) -> InsnNode:
        return self.insns[-1]


@dataclass
class FunctionCFG:
    """CFG of one linked function."""

    name: str
    entry: int
    blocks: Dict[int, BasicBlock]
    #: start addresses of blocks reachable from the entry
    reachable: FrozenSet[int]
    #: statically known intra-image call targets
    call_targets: FrozenSet[int]
    #: contains an indirect jump, making reachability conservative
    has_indirect_jump: bool

    @property
    def unreachable_blocks(self) -> List[BasicBlock]:
        return [b for a, b in sorted(self.blocks.items())
                if a not in self.reachable]

    def block_of(self, addr: int) -> Optional[BasicBlock]:
        for block in self.blocks.values():
            if block.start <= addr < block.end:
                return block
        return None


@dataclass
class KernelCFG:
    """All function CFGs of one kernel image."""

    arch: str
    image: KernelImage
    functions: Dict[str, FunctionCFG]
    #: addr -> (function name, block start) for every instruction
    insn_map: Dict[int, Tuple[str, int]]

    def insn_reachable(self, addr: int) -> bool:
        entry = self.insn_map.get(addr)
        if entry is None:
            return False
        name, block_start = entry
        return block_start in self.functions[name].reachable

    @property
    def total_blocks(self) -> int:
        return sum(len(f.blocks) for f in self.functions.values())

    @property
    def total_unreachable_blocks(self) -> int:
        return sum(len(f.blocks) - len(f.reachable)
                   for f in self.functions.values())


def decode_at(arch: str, image: KernelImage, addr: int) -> AnyInstr:
    """Decode the instruction at a text address, zero-padding at the
    end of the section exactly like ``disasm.disassemble`` does."""
    off = addr - image.text_base
    if arch == "x86":
        window = image.text_bytes[off:off + xdec.MAX_INSN_LEN]
        if len(window) < xdec.MAX_INSN_LEN:
            window = window + bytes(xdec.MAX_INSN_LEN - len(window))
        return xdec.decode(window, addr)
    word = int.from_bytes(image.text_bytes[off:off + 4], "big")
    return pdec.decode(word, addr)


def _function_cfg(arch: str, image: KernelImage, name: str) -> FunctionCFG:
    info = image.functions[name]
    addrs = list(info.insn_addrs)
    end = info.addr + info.size
    in_function = set(addrs)

    nodes: List[InsnNode] = []
    for pos, addr in enumerate(addrs):
        insn = decode_at(arch, image, addr)
        next_addr = addrs[pos + 1] if pos + 1 < len(addrs) else end
        length = next_addr - addr
        if isinstance(insn, Instr) and insn.length != length:
            raise ValueError(
                f"{name}+{addr - info.addr:#x}: decoded length "
                f"{insn.length} != linked length {length}")
        nodes.append(InsnNode(addr, length, insn,
                              insn_effects(insn, addr)))

    # leaders: entry, branch targets inside the function, and the
    # instruction after any terminator
    leaders = {info.addr}
    for node in nodes:
        eff = node.effects
        if eff.is_terminator:
            fall = node.addr + node.length
            if fall in in_function:
                leaders.add(fall)
            if eff.kind in (KIND_JUMP, KIND_BRANCH) \
                    and eff.target in in_function:
                leaders.add(eff.target)

    blocks: Dict[int, BasicBlock] = {}
    current: Optional[BasicBlock] = None
    for node in nodes:
        if node.addr in leaders or current is None:
            current = BasicBlock(start=node.addr)
            blocks[node.addr] = current
        current.insns.append(node)
        if node.effects.is_terminator:
            current = None

    call_targets = set()
    has_indirect = False
    for start in sorted(blocks):
        block = blocks[start]
        eff = block.terminator.effects
        fall = block.end
        succs: List[int] = []
        if eff.kind == KIND_JUMP:
            if eff.target in in_function:
                succs.append(eff.target)
            # a jump out of the function is a tail transfer: no
            # intra-function successor
        elif eff.kind == KIND_BRANCH:
            if eff.target in in_function:
                succs.append(eff.target)
            if fall in in_function:
                succs.append(fall)
        elif eff.kind == "jump-indirect":
            has_indirect = True
        elif eff.kind in ("ret", "illegal", "halt"):
            pass
        else:                      # fall, call, call-indirect, trap-ish
            if fall in in_function:
                succs.append(fall)
        if eff.kind == KIND_CALL and eff.target is not None:
            call_targets.add(eff.target)
        # successors are block starts by construction (leaders)
        block.succs = succs

    if has_indirect:
        reachable = frozenset(blocks)
    else:
        reachable_set = set()
        stack = [info.addr]
        while stack:
            start = stack.pop()
            if start in reachable_set or start not in blocks:
                continue
            reachable_set.add(start)
            stack.extend(blocks[start].succs)
        reachable = frozenset(reachable_set)

    return FunctionCFG(name=name, entry=info.addr, blocks=blocks,
                       reachable=reachable,
                       call_targets=frozenset(call_targets),
                       has_indirect_jump=has_indirect)


def build_cfg(arch: str, image: KernelImage) -> KernelCFG:
    """Build CFGs for every function in a linked kernel image."""
    functions: Dict[str, FunctionCFG] = {}
    insn_map: Dict[int, Tuple[str, int]] = {}
    for name in sorted(image.functions):
        fcfg = _function_cfg(arch, image, name)
        functions[name] = fcfg
        for start, block in fcfg.blocks.items():
            for node in block.insns:
                insn_map[node.addr] = (name, start)
    return KernelCFG(arch=arch, image=image, functions=functions,
                     insn_map=insn_map)
