"""Backward register- and condition-flag-liveness over the CFG.

Classic backward may-analysis on the :class:`~repro.static.cfg`
basic blocks: a resource is *live* at a point if some path from that
point may read it before redefining it.  The transfer function comes
straight from the per-instruction :class:`InsnEffects` def/use sets.

Conservatism (always toward *more* live, never less):

* calls use every argument-passing register and the stack pointer,
  and clobber exactly the ABI's caller-saved set (kcc emits standard
  cdecl / SysV-PPC conventions);
* function exits (``ret`` / ``bclr`` / ``iret`` / ``rfi``) keep the
  return-value registers, the stack pointer, and all callee-saved
  state live;
* transfers whose destination is statically unknown or outside the
  function (indirect jumps, tail jumps, fall-off) keep *everything*
  live;
* after a guaranteed-illegal instruction or ``hlt`` nothing is live.

The result maps every instruction address to its live-out set; a
definition whose targets are all dead at that point is a candidate
dead-value write for the predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set

from repro.static.cfg import BasicBlock, FunctionCFG, KernelCFG
from repro.static.effects import (
    InsnEffects, KIND_BRANCH, KIND_CALL, KIND_CALL_INDIRECT, KIND_HALT,
    KIND_ILLEGAL, KIND_JUMP, KIND_JUMP_INDIRECT, KIND_RET,
    PPC_RESOURCES, X86_RESOURCES, resources_for,
)

# return values + stack/frame + callee-saved survive a function exit
X86_EXIT_LIVE = frozenset({"eax", "edx", "esp", "ebp",
                           "ebx", "esi", "edi"})
# r3/r4 return pair, r1 stack, r13-r31 nonvolatile, cr2-cr4 nonvolatile
PPC_EXIT_LIVE = frozenset({"r1", "r3", "r4"}
                          | {f"r{n}" for n in range(13, 32)}
                          | {"cr2", "cr3", "cr4"})

X86_CALL_USES = frozenset({"esp", "ebp"})
X86_CALL_DEFS = frozenset({"eax", "ecx", "edx", "eflags"})

PPC_CALL_USES = frozenset({"r1"} | {f"r{n}" for n in range(3, 11)})
PPC_CALL_DEFS = frozenset({"r0", "lr", "ctr", "xer",
                           "cr0", "cr1", "cr5", "cr6", "cr7"}
                          | {f"r{n}" for n in range(3, 13)})

_ABI = {
    "x86": (X86_EXIT_LIVE, X86_CALL_USES, X86_CALL_DEFS,
            frozenset(X86_RESOURCES)),
    "ppc": (PPC_EXIT_LIVE, PPC_CALL_USES, PPC_CALL_DEFS,
            frozenset(PPC_RESOURCES)),
}


@dataclass
class LivenessResult:
    """Per-instruction live-out sets for one kernel image."""

    arch: str
    #: instruction address -> resources live immediately after it
    live_out: Dict[int, FrozenSet[str]]
    #: function name -> resources live at its entry
    entry_live: Dict[str, FrozenSet[str]]

    def dead_defs(self, addr: int, effects: InsnEffects) -> FrozenSet[str]:
        """The subset of an instruction's defs that nothing reads."""
        live = self.live_out.get(addr)
        if live is None:
            return frozenset()
        return effects.defs - live

    def is_dead_write(self, addr: int, effects: InsnEffects) -> bool:
        """True when the instruction's only architectural effect is
        writing resources that are dead afterwards."""
        if not effects.defs:
            return False
        if effects.writes_mem or effects.system or effects.may_fault:
            return False
        if effects.is_terminator:
            return False
        live = self.live_out.get(addr)
        if live is None:
            return False
        return not (effects.defs & live)


def _insn_transfer(eff: InsnEffects, live: Set[str],
                   call_uses: FrozenSet[str],
                   call_defs: FrozenSet[str]) -> Set[str]:
    defs, uses = eff.defs, eff.uses
    if eff.kind in (KIND_CALL, KIND_CALL_INDIRECT):
        defs = defs | call_defs
        uses = uses | call_uses
    return (live - defs) | uses


def _terminator_exit_live(eff: InsnEffects, fcfg: FunctionCFG,
                          exit_live: FrozenSet[str],
                          everything: FrozenSet[str],
                          block: BasicBlock) -> FrozenSet[str]:
    """Live-out contribution of control leaving the function (or the
    analysis' knowledge) at this block's terminator."""
    kind = eff.kind
    if kind == KIND_RET:
        return exit_live
    if kind in (KIND_ILLEGAL, KIND_HALT):
        return frozenset()
    if kind == KIND_JUMP_INDIRECT:
        return everything
    if kind == KIND_JUMP and not block.succs:
        return everything            # tail jump out of the function
    if kind == KIND_BRANCH and eff.target is not None \
            and eff.target not in fcfg.blocks:
        return everything            # branch out of the function
    if not block.succs and kind not in (KIND_JUMP,):
        # falls off the function end (e.g. ends in a noreturn call)
        return everything
    return frozenset()


def _function_liveness(fcfg: FunctionCFG, arch: str,
                       live_out_map: Dict[int, FrozenSet[str]]
                       ) -> FrozenSet[str]:
    exit_live, call_uses, call_defs, everything = _ABI[arch]

    live_in: Dict[int, Set[str]] = {a: set() for a in fcfg.blocks}
    # iterate to fixpoint; blocks in reverse address order converge
    # quickly for the mostly-forward CFGs kcc emits
    changed = True
    while changed:
        changed = False
        for start in sorted(fcfg.blocks, reverse=True):
            block = fcfg.blocks[start]
            eff = block.terminator.effects
            out: Set[str] = set(_terminator_exit_live(
                eff, fcfg, exit_live, everything, block))
            for succ in block.succs:
                out |= live_in[succ]
            live = set(out)
            for node in reversed(block.insns):
                live = _insn_transfer(node.effects, live, call_uses,
                                      call_defs)
            if live != live_in[start]:
                live_in[start] = live
                changed = True

    # final backward walk records per-instruction live-out
    for start, block in fcfg.blocks.items():
        eff = block.terminator.effects
        out = set(_terminator_exit_live(eff, fcfg, exit_live,
                                        everything, block))
        for succ in block.succs:
            out |= live_in[succ]
        live = set(out)
        for node in reversed(block.insns):
            live_out_map[node.addr] = frozenset(live)
            live = _insn_transfer(node.effects, live, call_uses,
                                  call_defs)
    return frozenset(live_in[fcfg.entry])


def compute_liveness(cfg: KernelCFG) -> LivenessResult:
    """Run the backward liveness fixpoint over every function."""
    resources_for(cfg.arch)        # validate arch early
    live_out_map: Dict[int, FrozenSet[str]] = {}
    entry_live: Dict[str, FrozenSet[str]] = {}
    for name, fcfg in cfg.functions.items():
        entry_live[name] = _function_liveness(fcfg, cfg.arch,
                                              live_out_map)
    return LivenessResult(arch=cfg.arch, live_out=live_out_map,
                          entry_live=entry_live)
