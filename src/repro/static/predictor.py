"""Fold reachability + liveness + corruption class + taint into
per-bit predictions.

Decision procedure for one (instruction, bit), in order:

1. decode-identical flip → ``NOT_MANIFESTED`` (class ``NO_CHANGE``);
2. instruction statically unreachable → ``NOT_ACTIVATED``;
3. flipped decode is guaranteed-illegal or (x86) changes the
   instruction length, desynchronizing the following stream →
   ``MANIFESTED``;
4. otherwise the flip substitutes the operation or an operand; the
   effect model decides:

   * supervisor state, memory writes, or traps appear/disappear/move
     → ``MANIFESTED`` (wild stores and bad-address loads are the
     paper's dominant crash causes);
   * control flow changes shape, target, or condition inputs →
     ``MANIFESTED``;
   * a memory *read* keeps its operation but its address registers
     change → ``MANIFESTED`` (bad paging / bad area);
   * the stack/frame pointer becomes a destination → ``MANIFESTED``
     (every later frame access goes wild);
   * otherwise only register dataflow changed, and the taint engine
     (:mod:`repro.static.taint`) decides: seed the registers the
     flip can wrong (old defs ∪ new defs) and follow them —

     - **provable death** (liveness kills the seed immediately, or
       the taint fixpoint shows every tainted resource overwritten
       before any sink) → ``NOT_MANIFESTED``, proof-backed; the
       ``DEAD_WRITE`` class marks the immediate-liveness case;
     - **sink within the calibrated horizon** — the wrong value
       feeds a memory address within ``MEM_SINK_HORIZON``
       instructions, a supervisor/trap operand anywhere, or
       (when control conditions are its only reachable effect) a
       branch decision within ``CONTROL_ONLY_WINDOW`` →
       ``MANIFESTED``, with the evidence chain and the
       distance-to-sink bound recorded on the prediction;
     - anything else (escape, distant sink, workload-output-only
       sink) → ``NOT_MANIFESTED``, the calibrated fallback —
       campaigns show long-range value substitutions are
       predominantly masked (overwritten, compared equal, or never
       part of the workload's result), the paper's own explanation
       for its large non-manifestation counts.

Pruning soundness: a bit is *taint-prunable* (safe to skip under
``--prune=taint``) only when its death proof holds under the dynamic
fault model too — the substituted instruction must not be a block
terminator and must keep an identical fault surface (same operation
and memory access, destination-register change only) so the corrupted
run cannot fault where the clean run does not.  ``dead_bits`` keeps
PR 4's stricter decode-identical/unreachable-only meaning.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, Optional, Tuple

from repro.kcc.linker import KernelImage
from repro.kernel.build import build_kernel
from repro.static.cfg import AnyInstr, KernelCFG, build_cfg
from repro.static.corruption import (
    _PPC_SEMANTIC_SLOTS, _X86_SEMANTIC_SLOTS, CorruptionClass,
    classify_flip,
)
from repro.static.effects import InsnEffects, insn_effects
from repro.static.liveness import LivenessResult, compute_liveness
from repro.static.report import (
    BitPrediction, PredictedOutcome, StaticSensitivityReport,
)
from repro.static.taint import TaintEngine, TaintVerdict, VERDICT_DEAD
from repro.x86.insn import Instr

#: stack/frame registers: corrupting them derails every later access
_PIVOT_REGS = {"x86": frozenset({"esp", "ebp"}),
               "ppc": frozenset({"r1"})}

#: a ``mem-addr`` sink within this many instructions of the
#: corruption predicts a manifestation: the wrong value becomes a
#: pointer before anything can overwrite or mask it.  Farther
#: address sinks are predominantly re-ranged (index arithmetic,
#: rebounded loops) before dereference — calibrated against the
#: deterministic validation campaigns (tests/test_validate_static.py)
MEM_SINK_HORIZON = 2

#: when the taint's *only* reachable sinks are control conditions,
#: nothing can mask the wrong value — its entire downstream effect
#: is a branch decision.  Distance 1 (the adjacent compare→branch
#: pair) still masks dynamically: a substituted comparison usually
#: reaches the same verdict on related operands.  Calibrated window.
CONTROL_ONLY_WINDOW = (2, 4)

#: sink kinds that predict a manifestation at any distance: a wrong
#: privileged operand or trap operand has no masking story at all
ALWAYS_MANIFEST_SINKS = frozenset({"supervisor", "trap-operand"})


def _substitution_manifests(arch: str, orig: InsnEffects,
                            flipped: InsnEffects) -> bool:
    """Decide an opcode/operand substitution at a reachable insn:
    does the corruption do structural damage (memory, control flow,
    supervisor state, new fault sources), or does it merely put a
    wrong value in a register?"""
    # supervisor state involved on either side
    if orig.system or flipped.system:
        return True
    # a store appears, disappears, or may move
    if orig.writes_mem or flipped.writes_mem:
        return True
    # control flow changes shape or destination
    if orig.kind != flipped.kind or orig.target != flipped.target:
        return True
    if orig.is_terminator and orig.uses != flipped.uses:
        return True                # condition inputs changed
    # a trap/fault source appears where none was
    if flipped.may_fault and not orig.may_fault:
        return True
    # a load's address registers changed (same operation class)
    if flipped.reads_mem and (not orig.reads_mem
                              or flipped.uses != orig.uses):
        return True
    # the stack/frame pointer becomes a destination
    changed = orig.defs | flipped.defs
    if changed & _PIVOT_REGS[arch]:
        return True
    # pure register dataflow: the taint engine decides
    return False


def _same_fault_surface(orig: AnyInstr, flipped: AnyInstr) -> bool:
    """True when the substitution provably cannot change *where or
    whether* the instruction faults: same operation, and every
    operand field except the pure-destination register is identical
    (so any memory access has the same address and width)."""
    if orig.execute is not flipped.execute:
        return False
    if isinstance(orig, Instr):
        slots: Tuple[str, ...] = _X86_SEMANTIC_SLOTS
        dest = "reg"
    else:
        slots = _PPC_SEMANTIC_SLOTS
        dest = "rt"
    return all(getattr(orig, s) == getattr(flipped, s)
               for s in slots if s != dest)


def _taint_prune_eligible(orig_eff: InsnEffects,
                          flip_eff: InsnEffects, orig_insn: AnyInstr,
                          flip_insn: AnyInstr) -> bool:
    """A taint death proof licenses pruning only when the dynamic
    fault model agrees with the static one: no terminator semantics
    involved (a condition-sense substitution changes behaviour
    without changing any tracked definition) and an unchanged fault
    surface (a substituted divisor or load address could fault where
    the clean run does not)."""
    if orig_eff.is_terminator or flip_eff.is_terminator:
        return False
    if not (orig_eff.may_fault or flip_eff.may_fault):
        return True
    return _same_fault_surface(orig_insn, flip_insn)


def analyze_image(arch: str, image: KernelImage,
                  cfg: Optional[KernelCFG] = None,
                  liveness: Optional[LivenessResult] = None,
                  taint: bool = True) -> StaticSensitivityReport:
    """Predict the outcome of every (addr, bit) in a kernel image.

    ``taint=False`` skips the propagation engine (every pure-dataflow
    substitution takes the calibrated fallback, as in PR 4); the
    pinned digests and the ``--prune=taint`` bit set require the
    default ``taint=True``.
    """
    if cfg is None:
        cfg = build_cfg(arch, image)
    if liveness is None:
        liveness = compute_liveness(cfg)
    engine = TaintEngine(cfg) if taint else None

    predictions: Dict[Tuple[int, int], BitPrediction] = {}
    insn_count = 0
    for fcfg in cfg.functions.values():
        for start, block in fcfg.blocks.items():
            reachable = start in fcfg.reachable
            for node in block.insns:
                insn_count += 1
                live_out = liveness.live_out.get(node.addr, frozenset())
                for bit in range(node.length * 8):
                    predictions[(node.addr, bit)] = _predict_bit(
                        arch, image, node.addr, bit, node.insn,
                        node.effects, reachable, live_out, engine)

    return StaticSensitivityReport(
        arch=arch,
        text_bytes=len(image.text_bytes),
        insn_count=insn_count,
        function_count=len(cfg.functions),
        block_count=cfg.total_blocks,
        unreachable_block_count=cfg.total_unreachable_blocks,
        predictions=predictions,
    )


def _sink_manifests(verdict: TaintVerdict) -> bool:
    """The calibrated sink policy (see the module docstring and the
    horizon constants above).  The ``store-data`` and
    ``workload-output`` sinks only say the wrong value *escaped the
    register file*, not that the run fails — campaigns show those
    predominantly masked, so they never predict a manifestation on
    their own."""
    kinds = {hit.kind for hit in verdict.sinks}
    if kinds & ALWAYS_MANIFEST_SINKS:
        return True
    if any(hit.kind == "mem-addr"
           and hit.distance <= MEM_SINK_HORIZON
           for hit in verdict.sinks):
        return True
    if kinds == {"control"}:
        low, high = CONTROL_ONLY_WINDOW
        return any(low <= hit.distance <= high
                   for hit in verdict.sinks)
    return False


def _predict_bit(arch: str, image: KernelImage, addr: int, bit: int,
                 orig_insn: AnyInstr, orig_effects: InsnEffects,
                 reachable: bool, live_out: FrozenSet[str],
                 engine: Optional[TaintEngine]) -> BitPrediction:
    corruption, flipped = classify_flip(arch, image, addr, bit)
    if corruption is CorruptionClass.NO_CHANGE:
        outcome = (PredictedOutcome.NOT_MANIFESTED if reachable
                   else PredictedOutcome.NOT_ACTIVATED)
        return BitPrediction(addr, bit, corruption, outcome)
    if not reachable:
        return BitPrediction(addr, bit, corruption,
                             PredictedOutcome.NOT_ACTIVATED)
    if corruption in (CorruptionClass.ILLEGAL,
                      CorruptionClass.LENGTH_CHANGE):
        return BitPrediction(addr, bit, corruption,
                             PredictedOutcome.MANIFESTED)
    flipped_effects = insn_effects(flipped, addr)
    if _substitution_manifests(arch, orig_effects, flipped_effects):
        return BitPrediction(addr, bit, corruption,
                             PredictedOutcome.MANIFESTED)
    # pure register dataflow: follow the wrong values
    changed = orig_effects.defs | flipped_effects.defs
    eligible = _taint_prune_eligible(orig_effects, flipped_effects,
                                     orig_insn, flipped)
    if not (changed & live_out):
        # liveness proves the seed dead on the spot — the degenerate
        # (distance-zero) taint death proof
        return BitPrediction(addr, bit, CorruptionClass.DEAD_WRITE,
                             PredictedOutcome.NOT_MANIFESTED,
                             verdict=VERDICT_DEAD,
                             taint_prunable=eligible)
    if engine is None:
        return BitPrediction(addr, bit, corruption,
                             PredictedOutcome.NOT_MANIFESTED)
    verdict = engine.propagate(addr, frozenset(changed))
    if verdict.provably_dead:
        return BitPrediction(addr, bit, corruption,
                             PredictedOutcome.NOT_MANIFESTED,
                             verdict=verdict.verdict,
                             taint_prunable=eligible)
    outcome = (PredictedOutcome.MANIFESTED if _sink_manifests(verdict)
               else PredictedOutcome.NOT_MANIFESTED)
    return BitPrediction(addr, bit, corruption, outcome,
                         verdict=verdict.verdict, sink=verdict.sink,
                         distance=verdict.distance,
                         evidence=verdict.path)


def analyze_kernel(arch: str,
                   taint: bool = True) -> StaticSensitivityReport:
    """Build (or fetch the cached) kernel image and analyze it."""
    image = build_kernel(arch)
    return analyze_image(arch, image, taint=taint)


@lru_cache(maxsize=None)
def dead_code_bits(arch: str) -> FrozenSet[Tuple[int, int]]:
    """The provably-prunable (addr, bit) pairs of an arch's kernel
    under the strict PR 4 rule: decode-identical flips and
    statically-unreachable code only.

    Cached per process: the campaign engine calls this once per
    ``--prune=dead`` campaign (including once per worker process),
    and the set is a pure function of the deterministic kernel build.
    """
    return analyze_kernel(arch, taint=False).dead_bits


@lru_cache(maxsize=None)
def taint_masked_bits(arch: str) -> FrozenSet[Tuple[int, int]]:
    """The (addr, bit) pairs prunable under ``--prune=taint``: the
    strict dead set plus every bit whose corruption the taint engine
    proves masked (``taint_prunable`` predictions).  Cached like
    :func:`dead_code_bits`."""
    report = analyze_kernel(arch)
    return report.dead_bits | report.taint_masked_bits


def clear_caches() -> None:
    """Drop the module-level per-arch analysis caches (test isolation
    hook, mirroring ``CampaignContext.clear_cache``)."""
    dead_code_bits.cache_clear()
    taint_masked_bits.cache_clear()
