"""Fold reachability + liveness + corruption class into predictions.

Decision procedure for one (instruction, bit), in order:

1. decode-identical flip → ``NOT_MANIFESTED`` (class ``NO_CHANGE``);
2. instruction statically unreachable → ``NOT_ACTIVATED``;
3. flipped decode is guaranteed-illegal or (x86) changes the
   instruction length, desynchronizing the following stream →
   ``MANIFESTED``;
4. otherwise the flip substitutes the operation or an operand; the
   effect model decides:

   * supervisor state, memory writes, or traps appear/disappear/move
     → ``MANIFESTED`` (wild stores and bad-address loads are the
     paper's dominant crash causes);
   * control flow changes shape, target, or condition inputs →
     ``MANIFESTED``;
   * a memory *read* keeps its operation but its address registers
     change → ``MANIFESTED`` (bad paging / bad area);
   * the stack/frame pointer becomes a destination → ``MANIFESTED``
     (every later frame access goes wild);
   * otherwise only register dataflow changed → ``NOT_MANIFESTED``:
     if every register that could now hold a wrong value (old defs ∪
     new defs) is dead, this is a *provable* ``DEAD_WRITE``;
     otherwise the corruption reaches live data but campaigns show
     such value substitutions are predominantly masked (overwritten,
     compared equal, or never part of the workload's result) — the
     paper's own explanation for its large non-manifestation counts.

That last rule is the calibrated one: structural damage (illegal
decode, stream desync, wild memory, control flow, supervisor state)
predicts a crash; plain wrong-value-in-register predicts masking.
Validation against dynamic code campaigns
(``analysis/validate_static.py``) measures exactly how often each
side of that bet loses.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, Optional, Tuple

from repro.kcc.linker import KernelImage
from repro.kernel.build import build_kernel
from repro.static.cfg import KernelCFG, build_cfg
from repro.static.corruption import CorruptionClass, classify_flip
from repro.static.effects import InsnEffects, insn_effects
from repro.static.liveness import LivenessResult, compute_liveness
from repro.static.report import (
    BitPrediction, PredictedOutcome, StaticSensitivityReport,
)

#: stack/frame registers: corrupting them derails every later access
_PIVOT_REGS = {"x86": frozenset({"esp", "ebp"}),
               "ppc": frozenset({"r1"})}


def _substitution_manifests(arch: str, orig: InsnEffects,
                            flipped: InsnEffects) -> bool:
    """Decide an opcode/operand substitution at a reachable insn:
    does the corruption do structural damage (memory, control flow,
    supervisor state, new fault sources), or does it merely put a
    wrong value in a register?"""
    # supervisor state involved on either side
    if orig.system or flipped.system:
        return True
    # a store appears, disappears, or may move
    if orig.writes_mem or flipped.writes_mem:
        return True
    # control flow changes shape or destination
    if orig.kind != flipped.kind or orig.target != flipped.target:
        return True
    if orig.is_terminator and orig.uses != flipped.uses:
        return True                # condition inputs changed
    # a trap/fault source appears where none was
    if flipped.may_fault and not orig.may_fault:
        return True
    # a load's address registers changed (same operation class)
    if flipped.reads_mem and (not orig.reads_mem
                              or flipped.uses != orig.uses):
        return True
    # the stack/frame pointer becomes a destination
    changed = orig.defs | flipped.defs
    if changed & _PIVOT_REGS[arch]:
        return True
    # pure register dataflow: predominantly masked dynamically
    return False


def analyze_image(arch: str, image: KernelImage,
                  cfg: Optional[KernelCFG] = None,
                  liveness: Optional[LivenessResult] = None
                  ) -> StaticSensitivityReport:
    """Predict the outcome of every (addr, bit) in a kernel image."""
    if cfg is None:
        cfg = build_cfg(arch, image)
    if liveness is None:
        liveness = compute_liveness(cfg)

    predictions: Dict[Tuple[int, int], BitPrediction] = {}
    insn_count = 0
    for fcfg in cfg.functions.values():
        for start, block in fcfg.blocks.items():
            reachable = start in fcfg.reachable
            for node in block.insns:
                insn_count += 1
                live_out = liveness.live_out.get(node.addr, frozenset())
                for bit in range(node.length * 8):
                    predictions[(node.addr, bit)] = _predict_bit(
                        arch, image, node.addr, bit, node.effects,
                        reachable, live_out)

    return StaticSensitivityReport(
        arch=arch,
        text_bytes=len(image.text_bytes),
        insn_count=insn_count,
        function_count=len(cfg.functions),
        block_count=cfg.total_blocks,
        unreachable_block_count=cfg.total_unreachable_blocks,
        predictions=predictions,
    )


def _predict_bit(arch: str, image: KernelImage, addr: int, bit: int,
                 orig_effects: InsnEffects, reachable: bool,
                 live_out: FrozenSet[str]) -> BitPrediction:
    corruption, flipped = classify_flip(arch, image, addr, bit)
    if corruption is CorruptionClass.NO_CHANGE:
        outcome = (PredictedOutcome.NOT_MANIFESTED if reachable
                   else PredictedOutcome.NOT_ACTIVATED)
        return BitPrediction(addr, bit, corruption, outcome)
    if not reachable:
        return BitPrediction(addr, bit, corruption,
                             PredictedOutcome.NOT_ACTIVATED)
    if corruption in (CorruptionClass.ILLEGAL,
                      CorruptionClass.LENGTH_CHANGE):
        return BitPrediction(addr, bit, corruption,
                             PredictedOutcome.MANIFESTED)
    flipped_effects = insn_effects(flipped, addr)
    if _substitution_manifests(arch, orig_effects, flipped_effects):
        return BitPrediction(addr, bit, corruption,
                             PredictedOutcome.MANIFESTED)
    # benign register substitution: promote to DEAD_WRITE only when
    # liveness *proves* nothing reads the changed registers
    changed = orig_effects.defs | flipped_effects.defs
    if not (changed & live_out):
        corruption = CorruptionClass.DEAD_WRITE
    return BitPrediction(addr, bit, corruption,
                         PredictedOutcome.NOT_MANIFESTED)


def analyze_kernel(arch: str) -> StaticSensitivityReport:
    """Build (or fetch the cached) kernel image and analyze it."""
    image = build_kernel(arch)
    return analyze_image(arch, image)


@lru_cache(maxsize=None)
def dead_code_bits(arch: str) -> FrozenSet[Tuple[int, int]]:
    """The provably-prunable (addr, bit) pairs of an arch's kernel.

    Cached per process: the campaign engine calls this once per
    ``--prune-dead`` campaign (including once per worker process),
    and the set is a pure function of the deterministic kernel build.
    """
    return analyze_kernel(arch).dead_bits
