"""Encoding-level classification of single-bit text corruptions.

For a given (instruction address, bit) the analyzer decodes the
flipped bytes exactly the way the injected machine would refetch them
and compares against the clean decode:

* ``NO_CHANGE`` — the flipped encoding decodes to the same
  instruction (don't-care bits: x86 modrm corners, ppc reserved
  fields).  Provably cannot manifest; the prune policy's bread and
  butter.
* ``ILLEGAL`` — the flipped encoding decodes to a guaranteed
  invalid-opcode fault (``ud2``-like, undefined encodings, ppc's
  sparse opcode space).
* ``LENGTH_CHANGE`` — x86 only: the flipped instruction has a
  different byte length, so every later instruction in the stream is
  refetched desynchronized.  The paper's central P4-vs-G4 mechanism.
* ``OPCODE_SUB`` — same length, different operation.
* ``OPERAND_SUB`` — same operation, different register/immediate/
  addressing operands.
* ``DEAD_WRITE`` — never produced here; the predictor promotes a
  substitution to this class when liveness proves every changed
  destination dead (see :mod:`repro.static.predictor`).

The flip is applied to the in-memory byte exactly like
``injection.injector`` does: ``byte = addr + bit//8``, bit ``bit%8``
within that byte.  PowerPC words are big-endian in memory, so memory
byte 0 is word bits 31..24.
"""

from __future__ import annotations

import enum
from typing import Tuple, Union

from repro.kcc.linker import KernelImage
from repro.ppc import decoder as pdec
from repro.ppc.insn import PPCInstr
from repro.static.cfg import decode_at
from repro.x86 import decoder as xdec
from repro.x86.insn import Instr

AnyInstr = Union[Instr, PPCInstr]


class CorruptionClass(enum.Enum):
    NO_CHANGE = "no-change"
    ILLEGAL = "illegal"
    LENGTH_CHANGE = "length-change"
    OPCODE_SUB = "opcode-sub"
    OPERAND_SUB = "operand-sub"
    DEAD_WRITE = "dead-write"

    def __str__(self) -> str:
        return self.value


#: x86 execute functions that fault unconditionally when reached
_X86_ALWAYS_ILLEGAL = (xdec.exec_invalid, xdec.exec_ud2)

_X86_SEMANTIC_SLOTS = tuple(s for s in Instr.__slots__ if s != "raw")
_PPC_SEMANTIC_SLOTS = tuple(s for s in PPCInstr.__slots__
                            if s != "word")


def _same_semantics(a: AnyInstr, b: AnyInstr) -> bool:
    slots = _X86_SEMANTIC_SLOTS if isinstance(a, Instr) \
        else _PPC_SEMANTIC_SLOTS
    return all(getattr(a, s) == getattr(b, s) for s in slots)


def _is_illegal(insn: AnyInstr) -> bool:
    if isinstance(insn, Instr):
        if insn.execute in _X86_ALWAYS_ILLEGAL:
            return True
        # undefined sub-encodings that fault when executed
        if insn.execute is xdec.exec_grp5 and \
                insn.op2 not in (0, 1, 2, 4, 6):
            return True
        if insn.execute is xdec.exec_grp2 and \
                (insn.op2 & 7) in (2, 3, 6):
            return True
        if insn.execute in (xdec.exec_lea, xdec.exec_bound) and \
                insn.rm_reg >= 0:
            return True
        return False
    return insn.execute is pdec.exec_illegal


def flip_decode(arch: str, image: KernelImage, addr: int,
                bit: int) -> AnyInstr:
    """Decode the instruction at ``addr`` with ``bit`` flipped, the
    way the machine would refetch it after the injection."""
    off = addr - image.text_base
    if arch == "x86":
        window = bytearray(
            image.text_bytes[off:off + xdec.MAX_INSN_LEN])
        if len(window) < xdec.MAX_INSN_LEN:
            window.extend(bytes(xdec.MAX_INSN_LEN - len(window)))
        window[bit // 8] ^= 1 << (bit % 8)
        return xdec.decode(bytes(window), addr)
    word = int.from_bytes(image.text_bytes[off:off + 4], "big")
    # big-endian in memory: byte 0 holds word bits 31..24
    word ^= 1 << ((3 - bit // 8) * 8 + bit % 8)
    return pdec.decode(word, addr)


def classify_flip(arch: str, image: KernelImage, addr: int,
                  bit: int) -> Tuple[CorruptionClass, AnyInstr]:
    """Classify flipping ``bit`` of the instruction at ``addr``.

    Returns the encoding-level corruption class and the flipped
    decode (for downstream effect analysis).
    """
    original = decode_at(arch, image, addr)
    flipped = flip_decode(arch, image, addr, bit)
    if _same_semantics(original, flipped):
        return CorruptionClass.NO_CHANGE, flipped
    if _is_illegal(flipped):
        return CorruptionClass.ILLEGAL, flipped
    if isinstance(flipped, Instr) and isinstance(original, Instr) \
            and flipped.length != original.length:
        return CorruptionClass.LENGTH_CHANGE, flipped
    if flipped.execute is not original.execute \
            or flipped.mnemonic != original.mnemonic:
        return CorruptionClass.OPCODE_SUB, flipped
    # x86 groups (grp1/2/3/5, jcc/setcc/cmovcc) encode the operation
    # or condition in op2 under a shared mnemonic; ppc op2 carries
    # operand fields (rlwinm mask end, cmp CR field), so an op2-only
    # change there is an operand substitution
    if arch == "x86" and flipped.op2 != original.op2:
        return CorruptionClass.OPCODE_SUB, flipped
    return CorruptionClass.OPERAND_SUB, flipped
