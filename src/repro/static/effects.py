"""Per-ISA def/use and side-effect model of decoded instructions.

Every decoded instruction (``x86.insn.Instr`` / ``ppc.insn.PPCInstr``)
is mapped to an :class:`InsnEffects` record: the architectural
*resources* it reads and writes, whether it touches memory, how it
terminates (or does not terminate) a basic block, and whether it can
fault on its own.  The tables below are keyed by the decoder's
``execute`` function object, so they stay mechanically in sync with
the decode tables — an instruction the decoder can produce but the
table does not know is a hard error, not a silent default.

Resource vocabulary (the liveness domain):

* x86 — the eight 32-bit GPRs by name (``eax`` … ``edi``; 8/16-bit
  accesses alias their parent register) plus ``eflags``, meaning the
  arithmetic condition flags as one unit.  Partial-flag updates
  (``inc``, ``bt``, ``clc``…) are modelled read-modify-write so they
  never kill flag liveness; system bits (IF, NT) are *not* part of
  the resource, so ``cli``/``sti`` neither use nor define it.
* ppc — ``r0`` … ``r31``, ``lr``, ``ctr``, ``xer``, and the eight
  condition fields ``cr0`` … ``cr7`` as separate resources.

Supervisor state (segment registers, control registers, MSR, unnamed
SPRs — see :mod:`repro.machine.register_semantics`) is outside the
liveness domain; instructions touching it set ``system`` and are
never dead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Tuple, Union

from repro.x86 import decoder as xdec
from repro.x86.insn import Instr
from repro.x86.registers import GPR_NAMES
from repro.ppc import decoder as pdec
from repro.ppc.insn import PPCInstr
from repro.ppc.registers import SPR_CTR, SPR_LR, SPR_XER

# -- block-terminator kinds -------------------------------------------------

#: straight-line; execution continues at the next instruction
KIND_FALL = "fall"
#: unconditional direct jump (successor: target only)
KIND_JUMP = "jump"
#: conditional direct branch (successors: target + fallthrough)
KIND_BRANCH = "branch"
#: direct call (successor: fallthrough; target is another function)
KIND_CALL = "call"
#: indirect call through a register/memory value (successor: fallthrough)
KIND_CALL_INDIRECT = "call-indirect"
#: function return (no intra-function successor)
KIND_RET = "ret"
#: indirect jump (successors statically unknown)
KIND_JUMP_INDIRECT = "jump-indirect"
#: architecturally guaranteed fault (ud2, undefined encodings)
KIND_ILLEGAL = "illegal"
#: halts the processor (no successor)
KIND_HALT = "halt"

#: kinds that end a basic block
TERMINATOR_KINDS = frozenset({
    KIND_JUMP, KIND_BRANCH, KIND_CALL, KIND_CALL_INDIRECT,
    KIND_RET, KIND_JUMP_INDIRECT, KIND_ILLEGAL, KIND_HALT,
})

MASK32 = 0xFFFFFFFF

EFLAGS = "eflags"

X86_RESOURCES: Tuple[str, ...] = GPR_NAMES + (EFLAGS,)

PPC_GPRS: Tuple[str, ...] = tuple(f"r{n}" for n in range(32))
PPC_CRS: Tuple[str, ...] = tuple(f"cr{n}" for n in range(8))
PPC_RESOURCES: Tuple[str, ...] = PPC_GPRS + ("lr", "ctr", "xer") + PPC_CRS

_EMPTY: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class InsnEffects:
    """Architectural effect summary of one decoded instruction."""

    uses: FrozenSet[str] = _EMPTY
    defs: FrozenSet[str] = _EMPTY
    reads_mem: bool = False
    writes_mem: bool = False
    kind: str = KIND_FALL
    #: statically known branch/call target (``None`` for indirect)
    target: Optional[int] = None
    #: can fault architecturally without any corruption (traps,
    #: privileged checks, alignment, divide error, …)
    may_fault: bool = False
    #: reads or writes supervisor state outside the liveness domain
    system: bool = False

    @property
    def is_terminator(self) -> bool:
        return self.kind in TERMINATOR_KINDS


class UnknownInstructionError(LookupError):
    """The effect table has no entry for this execute function."""


# ---------------------------------------------------------------------------
# x86
# ---------------------------------------------------------------------------

def _xr(reg: int, width: int) -> str:
    """Canonical GPR resource for a register operand of a given width.

    8-bit registers 4-7 are ah/ch/dh/bh and alias eax..ebx.
    """
    if width == 1 and reg >= 4:
        return GPR_NAMES[reg - 4]
    return GPR_NAMES[reg]


def _x_mem_uses(i: Instr) -> set:
    uses = set()
    if i.base >= 0:
        uses.add(GPR_NAMES[i.base])
    if i.index >= 0:
        uses.add(GPR_NAMES[i.index])
    return uses


def _x_rel_target(i: Instr, addr: int) -> int:
    # cpu.eip at execute time is the next instruction's address
    return (addr + i.length + i.imm) & MASK32


_XFX = Dict[Callable, Callable[[Instr, int], InsnEffects]]
_X86_EFFECTS: _XFX = {}


def _x86(fn: Callable) -> Callable:
    def register(handler: Callable[[Instr, int], InsnEffects]) -> Callable:
        _X86_EFFECTS[fn] = handler
        return handler
    return register


def _alu_family(i: Instr, dest_rm: bool, has_reg_operand: bool) -> InsnEffects:
    """Shared shape of alu_rm_r / alu_r_rm / grp1_rm_imm.

    ``i.reg`` is a register operand only for the two-register forms;
    for grp1 it carries the modrm /op digit and must be ignored.
    """
    uses = _x_mem_uses(i)
    defs = {EFLAGS}
    reads = writes = False
    if i.op2 in (xdec.ALU_ADC, xdec.ALU_SBB):
        uses.add(EFLAGS)
    writeback = i.op2 != xdec.ALU_CMP
    if i.rm_reg >= 0:
        uses.add(_xr(i.rm_reg, i.width))
        if dest_rm and writeback:
            defs.add(_xr(i.rm_reg, i.width))
    else:
        reads = True
        if dest_rm and writeback:
            writes = True
    if has_reg_operand:
        uses.add(_xr(i.reg, i.width))
        if not dest_rm and writeback:
            defs.add(_xr(i.reg, i.width))
    return InsnEffects(frozenset(uses), frozenset(defs), reads, writes,
                       may_fault=reads or writes)


@_x86(xdec.exec_alu_rm_r)
def _(i: Instr, addr: int) -> InsnEffects:
    return _alu_family(i, dest_rm=True, has_reg_operand=True)


@_x86(xdec.exec_alu_r_rm)
def _(i: Instr, addr: int) -> InsnEffects:
    return _alu_family(i, dest_rm=False, has_reg_operand=True)


@_x86(xdec.exec_alu_a_imm)
def _(i: Instr, addr: int) -> InsnEffects:
    acc = _xr(0, i.width)
    uses = {acc}
    if i.op2 in (xdec.ALU_ADC, xdec.ALU_SBB):
        uses.add(EFLAGS)
    defs = {EFLAGS}
    if i.op2 != xdec.ALU_CMP:
        defs.add(acc)
    return InsnEffects(frozenset(uses), frozenset(defs))


@_x86(xdec.exec_grp1_rm_imm)
def _(i: Instr, addr: int) -> InsnEffects:
    return _alu_family(i, dest_rm=True, has_reg_operand=False)


@_x86(xdec.exec_test_rm_r)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = _x_mem_uses(i) | {_xr(i.reg, i.width)}
    reads = i.rm_reg < 0
    if not reads:
        uses.add(_xr(i.rm_reg, i.width))
    return InsnEffects(frozenset(uses), frozenset({EFLAGS}), reads,
                       may_fault=reads)


@_x86(xdec.exec_test_a_imm)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({_xr(0, i.width)}), frozenset({EFLAGS}))


@_x86(xdec.exec_mov_rm_r)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = _x_mem_uses(i) | {_xr(i.reg, i.width)}
    if i.rm_reg >= 0:
        return InsnEffects(frozenset(uses),
                           frozenset({_xr(i.rm_reg, i.width)}))
    return InsnEffects(frozenset(uses), _EMPTY, writes_mem=True,
                       may_fault=True)


@_x86(xdec.exec_mov_r_rm)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = _x_mem_uses(i)
    reads = i.rm_reg < 0
    if not reads:
        uses.add(_xr(i.rm_reg, i.width))
    return InsnEffects(frozenset(uses), frozenset({_xr(i.reg, i.width)}),
                       reads, may_fault=reads)


@_x86(xdec.exec_mov_r_imm)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(_EMPTY, frozenset({_xr(i.reg, i.width)}))


@_x86(xdec.exec_mov_rm_imm)
def _(i: Instr, addr: int) -> InsnEffects:
    if i.rm_reg >= 0:
        return InsnEffects(_EMPTY, frozenset({_xr(i.rm_reg, i.width)}))
    return InsnEffects(frozenset(_x_mem_uses(i)), _EMPTY, writes_mem=True,
                       may_fault=True)


def _x_load_to_reg(i: Instr, src_width: int) -> InsnEffects:
    uses = _x_mem_uses(i)
    reads = i.rm_reg < 0
    if not reads:
        uses.add(_xr(i.rm_reg, src_width))
    return InsnEffects(frozenset(uses), frozenset({_xr(i.reg, 4)}),
                       reads, may_fault=reads)


@_x86(xdec.exec_movzx)
def _(i: Instr, addr: int) -> InsnEffects:
    return _x_load_to_reg(i, i.op2)


@_x86(xdec.exec_movsx)
def _(i: Instr, addr: int) -> InsnEffects:
    return _x_load_to_reg(i, i.op2)


@_x86(xdec.exec_lea)
def _(i: Instr, addr: int) -> InsnEffects:
    if i.rm_reg >= 0:      # undefined: lea with register rm faults
        return InsnEffects(kind=KIND_ILLEGAL, may_fault=True)
    return InsnEffects(frozenset(_x_mem_uses(i)),
                       frozenset({_xr(i.reg, 4)}))


@_x86(xdec.exec_moffs_load)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(_EMPTY, frozenset({_xr(0, i.width)}),
                       reads_mem=True, may_fault=True)


@_x86(xdec.exec_moffs_store)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({_xr(0, i.width)}), _EMPTY,
                       writes_mem=True, may_fault=True)


@_x86(xdec.exec_xchg_r_rm)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = _x_mem_uses(i) | {_xr(i.reg, i.width)}
    defs = {_xr(i.reg, i.width)}
    if i.rm_reg >= 0:
        uses.add(_xr(i.rm_reg, i.width))
        defs.add(_xr(i.rm_reg, i.width))
        return InsnEffects(frozenset(uses), frozenset(defs))
    return InsnEffects(frozenset(uses), frozenset(defs), True, True,
                       may_fault=True)


@_x86(xdec.exec_xchg_eax_r)
def _(i: Instr, addr: int) -> InsnEffects:
    pair = frozenset({"eax", GPR_NAMES[i.reg]})
    return InsnEffects(pair, pair)


@_x86(xdec.exec_cdq)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({"eax"}), frozenset({"edx"}))


@_x86(xdec.exec_cwde)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({"eax"}), frozenset({"eax"}))


@_x86(xdec.exec_push_r)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({GPR_NAMES[i.reg], "esp"}),
                       frozenset({"esp"}), writes_mem=True, may_fault=True)


@_x86(xdec.exec_pop_r)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({"esp"}),
                       frozenset({GPR_NAMES[i.reg], "esp"}),
                       reads_mem=True, may_fault=True)


@_x86(xdec.exec_push_imm)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({"esp"}), frozenset({"esp"}),
                       writes_mem=True, may_fault=True)


@_x86(xdec.exec_pop_rm)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = _x_mem_uses(i) | {"esp"}
    defs = {"esp"}
    writes = False
    if i.rm_reg >= 0:
        defs.add(GPR_NAMES[i.rm_reg])
    else:
        writes = True
    return InsnEffects(frozenset(uses), frozenset(defs), True, writes,
                       may_fault=True)


@_x86(xdec.exec_pushfd)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({EFLAGS, "esp"}), frozenset({"esp"}),
                       writes_mem=True, may_fault=True)


@_x86(xdec.exec_popfd)
def _(i: Instr, addr: int) -> InsnEffects:
    # restores system bits (IF, NT) too: mark as system state
    return InsnEffects(frozenset({"esp"}), frozenset({EFLAGS, "esp"}),
                       reads_mem=True, may_fault=True, system=True)


@_x86(xdec.exec_leave)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({"ebp"}), frozenset({"esp", "ebp"}),
                       reads_mem=True, may_fault=True)


@_x86(xdec.exec_inc_r)
def _(i: Instr, addr: int) -> InsnEffects:
    # inc/dec preserve CF: read-modify-write of the flag resource
    return InsnEffects(frozenset({GPR_NAMES[i.reg], EFLAGS}),
                       frozenset({GPR_NAMES[i.reg], EFLAGS}))


@_x86(xdec.exec_dec_r)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({GPR_NAMES[i.reg], EFLAGS}),
                       frozenset({GPR_NAMES[i.reg], EFLAGS}))


@_x86(xdec.exec_grp5)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = _x_mem_uses(i)
    rm_is_reg = i.rm_reg >= 0
    if i.op2 in (0, 1):            # inc/dec r/m (CF preserved)
        uses.add(EFLAGS)
        defs = {EFLAGS}
        if rm_is_reg:
            uses.add(_xr(i.rm_reg, i.width))
            defs.add(_xr(i.rm_reg, i.width))
            return InsnEffects(frozenset(uses), frozenset(defs))
        return InsnEffects(frozenset(uses), frozenset(defs), True, True,
                           may_fault=True)
    if i.op2 == 2:                 # call r/m
        if rm_is_reg:
            uses.add(GPR_NAMES[i.rm_reg])
        uses.add("esp")
        return InsnEffects(frozenset(uses), frozenset({"esp"}),
                           reads_mem=not rm_is_reg, writes_mem=True,
                           kind=KIND_CALL_INDIRECT, may_fault=True)
    if i.op2 == 4:                 # jmp r/m
        if rm_is_reg:
            uses.add(GPR_NAMES[i.rm_reg])
        return InsnEffects(frozenset(uses), _EMPTY,
                           reads_mem=not rm_is_reg,
                           kind=KIND_JUMP_INDIRECT, may_fault=True)
    if i.op2 == 6:                 # push r/m
        if rm_is_reg:
            uses.add(GPR_NAMES[i.rm_reg])
        uses.add("esp")
        return InsnEffects(frozenset(uses), frozenset({"esp"}),
                           reads_mem=not rm_is_reg, writes_mem=True,
                           may_fault=True)
    return InsnEffects(kind=KIND_ILLEGAL, may_fault=True)


@_x86(xdec.exec_ret)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({"esp"}), frozenset({"esp"}),
                       reads_mem=True, kind=KIND_RET, may_fault=True)


@_x86(xdec.exec_call_rel)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({"esp"}), frozenset({"esp"}),
                       writes_mem=True, kind=KIND_CALL,
                       target=_x_rel_target(i, addr), may_fault=True)


@_x86(xdec.exec_jmp_rel)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(kind=KIND_JUMP, target=_x_rel_target(i, addr))


@_x86(xdec.exec_jcc)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({EFLAGS}), _EMPTY, kind=KIND_BRANCH,
                       target=_x_rel_target(i, addr))


@_x86(xdec.exec_grp2)
def _(i: Instr, addr: int) -> InsnEffects:
    op = i.op2 & 7
    if op in (2, 3, 6):            # rcl/rcr/undefined shift: faults
        return InsnEffects(kind=KIND_ILLEGAL, may_fault=True)
    uses = _x_mem_uses(i)
    defs = {EFLAGS}
    if (i.op2 >> 3) == 2:          # count in CL
        uses.add("ecx")
    reads = writes = False
    if i.rm_reg >= 0:
        uses.add(_xr(i.rm_reg, i.width))
        defs.add(_xr(i.rm_reg, i.width))
    else:
        reads = writes = True
    # count may be zero (flags untouched): model flags as RMW
    uses.add(EFLAGS)
    return InsnEffects(frozenset(uses), frozenset(defs), reads, writes,
                       may_fault=reads)


@_x86(xdec.exec_grp3)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = _x_mem_uses(i)
    reads = i.rm_reg < 0
    if not reads:
        uses.add(_xr(i.rm_reg, i.width))
    defs = set()
    writes = False
    fault = reads
    if i.op2 in (0, 1):            # test r/m, imm
        defs.add(EFLAGS)
    elif i.op2 == 2:               # not (no flags)
        if i.rm_reg >= 0:
            defs.add(_xr(i.rm_reg, i.width))
        else:
            writes = True
    elif i.op2 == 3:               # neg
        defs.add(EFLAGS)
        if i.rm_reg >= 0:
            defs.add(_xr(i.rm_reg, i.width))
        else:
            writes = True
    elif i.op2 in (4, 5):          # mul/imul: eax (and edx when 32-bit)
        uses.add(_xr(0, i.width))
        defs.add(_xr(0, i.width))
        if i.width == 4:
            defs.add("edx")
    else:                          # div/idiv: can raise divide error
        uses.add(_xr(0, i.width))
        defs.add(_xr(0, i.width))
        if i.width == 4:
            uses.add("edx")
            defs.add("edx")
        fault = True
    return InsnEffects(frozenset(uses), frozenset(defs), reads, writes,
                       may_fault=fault)


@_x86(xdec.exec_imul_r_rm)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = _x_mem_uses(i) | {_xr(i.reg, i.width)}
    reads = i.rm_reg < 0
    if not reads:
        uses.add(_xr(i.rm_reg, i.width))
    return InsnEffects(frozenset(uses), frozenset({_xr(i.reg, i.width)}),
                       reads, may_fault=reads)


@_x86(xdec.exec_imul_rmi)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = _x_mem_uses(i)
    reads = i.rm_reg < 0
    if not reads:
        uses.add(_xr(i.rm_reg, i.width))
    return InsnEffects(frozenset(uses), frozenset({_xr(i.reg, i.width)}),
                       reads, may_fault=reads)


@_x86(xdec.exec_nop)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects()


def _flag_rmw(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({EFLAGS}), frozenset({EFLAGS}))


_X86_EFFECTS[xdec.exec_clc] = _flag_rmw
_X86_EFFECTS[xdec.exec_stc] = _flag_rmw
_X86_EFFECTS[xdec.exec_cmc] = _flag_rmw


@_x86(xdec.exec_ud2)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(kind=KIND_ILLEGAL, may_fault=True)


@_x86(xdec.exec_invalid)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(kind=KIND_ILLEGAL, may_fault=True)


@_x86(xdec.exec_int)
def _(i: Instr, addr: int) -> InsnEffects:
    # int 0x80 raises SYSCALL; anything else may GP-fault or invoke a
    # real handler.  Either way it leaves straight-line flow.
    return InsnEffects(may_fault=True, system=True)


@_x86(xdec.exec_int3)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(system=True)


@_x86(xdec.exec_into)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({EFLAGS}), _EMPTY, may_fault=True)


@_x86(xdec.exec_iret)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({"esp", EFLAGS}),
                       frozenset({"esp", EFLAGS}), reads_mem=True,
                       kind=KIND_RET, may_fault=True, system=True)


@_x86(xdec.exec_hlt)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(kind=KIND_HALT, system=True)


@_x86(xdec.exec_cli)
def _(i: Instr, addr: int) -> InsnEffects:
    # IF is not part of the eflags liveness resource
    return InsnEffects(system=True)


@_x86(xdec.exec_sti)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(system=True)


@_x86(xdec.exec_bound)
def _(i: Instr, addr: int) -> InsnEffects:
    if i.rm_reg >= 0:
        return InsnEffects(kind=KIND_ILLEGAL, may_fault=True)
    uses = _x_mem_uses(i) | {GPR_NAMES[i.reg]}
    return InsnEffects(frozenset(uses), _EMPTY, reads_mem=True,
                       may_fault=True)


@_x86(xdec.exec_push_sreg)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({"esp"}), frozenset({"esp"}),
                       writes_mem=True, may_fault=True, system=True)


@_x86(xdec.exec_pop_sreg)
def _(i: Instr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({"esp"}), frozenset({"esp"}),
                       reads_mem=True, may_fault=True, system=True)


@_x86(xdec.exec_mov_sreg_rm)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = _x_mem_uses(i)
    reads = i.rm_reg < 0
    if not reads:
        uses.add(_xr(i.rm_reg, 2))
    return InsnEffects(frozenset(uses), _EMPTY, reads,
                       may_fault=True, system=True)


@_x86(xdec.exec_mov_rm_sreg)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = _x_mem_uses(i)
    if i.rm_reg >= 0:
        return InsnEffects(frozenset(uses),
                           frozenset({GPR_NAMES[i.rm_reg]}), system=True)
    return InsnEffects(frozenset(uses), _EMPTY, writes_mem=True,
                       may_fault=True, system=True)


@_x86(xdec.exec_mov_cr)
def _(i: Instr, addr: int) -> InsnEffects:
    gpr = GPR_NAMES[i.rm_reg if i.rm_reg >= 0 else 0]
    if i.op2 == 0:                 # mov r32, crN
        return InsnEffects(_EMPTY, frozenset({gpr}), system=True)
    # mov crN, r32: can flip paging/PE — full system write
    return InsnEffects(frozenset({gpr}), _EMPTY, may_fault=True,
                       system=True)


@_x86(xdec.exec_movs)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = {"esi", "edi"}
    defs = {"esi", "edi"}
    if i.op2:                      # rep
        uses.add("ecx")
        defs.add("ecx")
    return InsnEffects(frozenset(uses), frozenset(defs), True, True,
                       may_fault=True)


@_x86(xdec.exec_stos)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = {"edi", "eax"}
    defs = {"edi"}
    if i.op2:
        uses.add("ecx")
        defs.add("ecx")
    return InsnEffects(frozenset(uses), frozenset(defs), False, True,
                       may_fault=True)


@_x86(xdec.exec_setcc)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = _x_mem_uses(i) | {EFLAGS}
    if i.rm_reg >= 0:
        return InsnEffects(frozenset(uses),
                           frozenset({_xr(i.rm_reg, 1)}))
    return InsnEffects(frozenset(uses), _EMPTY, writes_mem=True,
                       may_fault=True)


@_x86(xdec.exec_cmovcc)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = _x_mem_uses(i) | {EFLAGS}
    reads = i.rm_reg < 0
    if not reads:
        uses.add(_xr(i.rm_reg, i.width))
    # conditional write: destination keeps its old value when the
    # condition fails, so the def is also a use
    dest = _xr(i.reg, i.width)
    uses.add(dest)
    return InsnEffects(frozenset(uses), frozenset({dest}), reads,
                       may_fault=reads)


def _bt_family(i: Instr, bit_from_reg: bool) -> InsnEffects:
    uses = _x_mem_uses(i) | {EFLAGS}
    if bit_from_reg:
        uses.add(_xr(i.reg, 4))
    defs = {EFLAGS}                # CF only: modelled RMW via uses
    reads = writes = False
    if i.rm_reg >= 0:
        uses.add(_xr(i.rm_reg, 4))
        if i.op2:
            defs.add(_xr(i.rm_reg, 4))
    else:
        reads = True
        writes = bool(i.op2)
    return InsnEffects(frozenset(uses), frozenset(defs), reads, writes,
                       may_fault=reads)


@_x86(xdec.exec_bt)
def _(i: Instr, addr: int) -> InsnEffects:
    return _bt_family(i, bit_from_reg=True)


@_x86(xdec.exec_bt_imm)
def _(i: Instr, addr: int) -> InsnEffects:
    return _bt_family(i, bit_from_reg=False)


def _bscan(i: Instr, addr: int) -> InsnEffects:
    uses = _x_mem_uses(i) | {EFLAGS}
    reads = i.rm_reg < 0
    if not reads:
        uses.add(_xr(i.rm_reg, 4))
    dest = _xr(i.reg, 4)
    uses.add(dest)                 # unwritten when the source is zero
    return InsnEffects(frozenset(uses), frozenset({dest, EFLAGS}), reads,
                       may_fault=reads)


_X86_EFFECTS[xdec.exec_bsf] = _bscan
_X86_EFFECTS[xdec.exec_bsr] = _bscan


@_x86(xdec.exec_shld)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = _x_mem_uses(i) | {_xr(i.reg, 4), EFLAGS}
    defs = {EFLAGS}
    reads = writes = False
    if i.rm_reg >= 0:
        uses.add(_xr(i.rm_reg, 4))
        defs.add(_xr(i.rm_reg, 4))
    else:
        reads = writes = True
    return InsnEffects(frozenset(uses), frozenset(defs), reads, writes,
                       may_fault=reads)


@_x86(xdec.exec_xadd)
def _(i: Instr, addr: int) -> InsnEffects:
    uses = _x_mem_uses(i) | {_xr(i.reg, i.width)}
    defs = {_xr(i.reg, i.width), EFLAGS}
    reads = writes = False
    if i.rm_reg >= 0:
        uses.add(_xr(i.rm_reg, i.width))
        defs.add(_xr(i.rm_reg, i.width))
    else:
        reads = writes = True
    return InsnEffects(frozenset(uses), frozenset(defs), reads, writes,
                       may_fault=reads)


@_x86(xdec.exec_cmpxchg)
def _(i: Instr, addr: int) -> InsnEffects:
    acc = _xr(0, i.width)
    uses = _x_mem_uses(i) | {acc, _xr(i.reg, i.width)}
    defs = {acc, EFLAGS}
    reads = writes = False
    if i.rm_reg >= 0:
        uses.add(_xr(i.rm_reg, i.width))
        defs.add(_xr(i.rm_reg, i.width))
    else:
        reads = writes = True
    return InsnEffects(frozenset(uses), frozenset(defs), reads, writes,
                       may_fault=reads)


# ---------------------------------------------------------------------------
# ppc
# ---------------------------------------------------------------------------

_PFX = Dict[Callable, Callable[[PPCInstr, int], InsnEffects]]
_PPC_EFFECTS: _PFX = {}


def _ppc(fn: Callable) -> Callable:
    def register(handler: Callable[[PPCInstr, int], InsnEffects]) -> Callable:
        _PPC_EFFECTS[fn] = handler
        return handler
    return register


def _g(n: int) -> str:
    return PPC_GPRS[n]


@_ppc(pdec.exec_illegal)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(kind=KIND_ILLEGAL, may_fault=True)


def _d_arith(i: PPCInstr, addr: int) -> InsnEffects:
    """addi/addis: rt <- (ra|0) + imm."""
    uses = frozenset({_g(i.ra)}) if i.ra else _EMPTY
    return InsnEffects(uses, frozenset({_g(i.rt)}))


_PPC_EFFECTS[pdec.exec_addi] = _d_arith
_PPC_EFFECTS[pdec.exec_addis] = _d_arith


def _d_carry(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({_g(i.ra)}),
                       frozenset({_g(i.rt), "xer"}))


_PPC_EFFECTS[pdec.exec_addic] = _d_carry
_PPC_EFFECTS[pdec.exec_subfic] = _d_carry


@_ppc(pdec.exec_adde)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({_g(i.ra), _g(i.rb), "xer"}),
                       frozenset({_g(i.rt), "xer"}))


@_ppc(pdec.exec_addze)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({_g(i.ra), "xer"}),
                       frozenset({_g(i.rt), "xer"}))


def _logic_unary(i: PPCInstr, addr: int) -> InsnEffects:
    """cntlzw/extsb/extsh/srawi/ori/…: ra <- f(rt)."""
    return InsnEffects(frozenset({_g(i.rt)}), frozenset({_g(i.ra)}))


for _fn in (pdec.exec_cntlzw, pdec.exec_extsb, pdec.exec_extsh,
            pdec.exec_srawi, pdec.exec_ori, pdec.exec_oris,
            pdec.exec_xori, pdec.exec_xoris, pdec.exec_rlwinm):
    _PPC_EFFECTS[_fn] = _logic_unary


def _andi_dot(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({_g(i.rt)}),
                       frozenset({_g(i.ra), "cr0"}))


_PPC_EFFECTS[pdec.exec_andi_dot] = _andi_dot
_PPC_EFFECTS[pdec.exec_andis_dot] = _andi_dot


@_ppc(pdec.exec_mulli)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({_g(i.ra)}), frozenset({_g(i.rt)}))


def _xo_arith(i: PPCInstr, addr: int) -> InsnEffects:
    """add/subf/mullw/divw/divwu: rt <- ra op rb (no trap on ppc)."""
    return InsnEffects(frozenset({_g(i.ra), _g(i.rb)}),
                       frozenset({_g(i.rt)}))


for _fn in (pdec.exec_add, pdec.exec_subf, pdec.exec_mullw,
            pdec.exec_divw, pdec.exec_divwu):
    _PPC_EFFECTS[_fn] = _xo_arith


@_ppc(pdec.exec_neg)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({_g(i.ra)}), frozenset({_g(i.rt)}))


def _logic_binary(i: PPCInstr, addr: int) -> InsnEffects:
    """and/or/xor/nand/nor/slw/srw/sraw: ra <- rt op rb."""
    return InsnEffects(frozenset({_g(i.rt), _g(i.rb)}),
                       frozenset({_g(i.ra)}))


for _fn in (pdec.exec_and, pdec.exec_or, pdec.exec_xor, pdec.exec_nand,
            pdec.exec_nor, pdec.exec_slw, pdec.exec_srw, pdec.exec_sraw):
    _PPC_EFFECTS[_fn] = _logic_binary


def _cmp_imm(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({_g(i.ra)}),
                       frozenset({PPC_CRS[i.op2]}))


_PPC_EFFECTS[pdec.exec_cmpwi] = _cmp_imm
_PPC_EFFECTS[pdec.exec_cmplwi] = _cmp_imm


def _cmp_reg(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({_g(i.ra), _g(i.rb)}),
                       frozenset({PPC_CRS[i.op2]}))


_PPC_EFFECTS[pdec.exec_cmpw] = _cmp_reg
_PPC_EFFECTS[pdec.exec_cmplw] = _cmp_reg


def _d_load(i: PPCInstr, addr: int) -> InsnEffects:
    uses = frozenset({_g(i.ra)}) if i.ra else _EMPTY
    return InsnEffects(uses, frozenset({_g(i.rt)}), reads_mem=True,
                       may_fault=True)


for _fn in (pdec.exec_lwz, pdec.exec_lbz, pdec.exec_lhz, pdec.exec_lha):
    _PPC_EFFECTS[_fn] = _d_load


@_ppc(pdec.exec_lwzu)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({_g(i.ra)}),
                       frozenset({_g(i.rt), _g(i.ra)}), reads_mem=True,
                       may_fault=True)


def _d_store(i: PPCInstr, addr: int) -> InsnEffects:
    uses = {_g(i.rt)}
    if i.ra:
        uses.add(_g(i.ra))
    return InsnEffects(frozenset(uses), _EMPTY, writes_mem=True,
                       may_fault=True)


for _fn in (pdec.exec_stw, pdec.exec_stb, pdec.exec_sth):
    _PPC_EFFECTS[_fn] = _d_store


@_ppc(pdec.exec_stwu)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({_g(i.rt), _g(i.ra)}),
                       frozenset({_g(i.ra)}), writes_mem=True,
                       may_fault=True)


def _x_load(i: PPCInstr, addr: int) -> InsnEffects:
    uses = {_g(i.rb)}
    if i.ra:
        uses.add(_g(i.ra))
    return InsnEffects(frozenset(uses), frozenset({_g(i.rt)}),
                       reads_mem=True, may_fault=True)


for _fn in (pdec.exec_lwzx, pdec.exec_lbzx, pdec.exec_lhzx,
            pdec.exec_lhax):
    _PPC_EFFECTS[_fn] = _x_load


def _x_store(i: PPCInstr, addr: int) -> InsnEffects:
    uses = {_g(i.rt), _g(i.rb)}
    if i.ra:
        uses.add(_g(i.ra))
    return InsnEffects(frozenset(uses), _EMPTY, writes_mem=True,
                       may_fault=True)


for _fn in (pdec.exec_stwx, pdec.exec_stbx, pdec.exec_sthx):
    _PPC_EFFECTS[_fn] = _x_store


@_ppc(pdec.exec_lmw)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    uses = frozenset({_g(i.ra)}) if i.ra else _EMPTY
    return InsnEffects(uses,
                       frozenset(_g(n) for n in range(i.rt, 32)),
                       reads_mem=True, may_fault=True)


@_ppc(pdec.exec_stmw)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    uses = set(_g(n) for n in range(i.rt, 32))
    if i.ra:
        uses.add(_g(i.ra))
    return InsnEffects(frozenset(uses), _EMPTY, writes_mem=True,
                       may_fault=True)


def _bc_cond_resources(i: PPCInstr) -> Tuple[set, set]:
    """uses/defs from the BO/BI condition machinery of bc-family."""
    bo, bi = i.rt, i.ra
    uses: set = set()
    defs: set = set()
    if not bo & 0x4:               # decrements and tests CTR
        uses.add("ctr")
        defs.add("ctr")
    if not bo & 0x10:              # tests a CR bit
        uses.add(PPC_CRS[bi >> 2])
    return uses, defs


def _bc_is_conditional(i: PPCInstr) -> bool:
    bo = i.rt
    return not (bo & 0x4 and bo & 0x10)


@_ppc(pdec.exec_b)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    target = i.imm if i.op2 & 2 else (addr + i.imm) & MASK32
    if i.op2 & 1:                  # bl: call
        return InsnEffects(_EMPTY, frozenset({"lr"}), kind=KIND_CALL,
                           target=target)
    return InsnEffects(kind=KIND_JUMP, target=target)


@_ppc(pdec.exec_bc)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    uses, defs = _bc_cond_resources(i)
    target = i.imm if i.op2 & 2 else (addr + i.imm) & MASK32
    if i.op2 & 1:
        defs.add("lr")
        kind = KIND_CALL
    elif _bc_is_conditional(i):
        kind = KIND_BRANCH
    else:
        kind = KIND_JUMP
    return InsnEffects(frozenset(uses), frozenset(defs), kind=kind,
                       target=target)


@_ppc(pdec.exec_bclr)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    uses, defs = _bc_cond_resources(i)
    uses.add("lr")
    if i.op2 & 1:
        defs.add("lr")
    kind = KIND_RET if not _bc_is_conditional(i) else KIND_BRANCH
    return InsnEffects(frozenset(uses), frozenset(defs), kind=kind)


@_ppc(pdec.exec_bcctr)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    uses, defs = _bc_cond_resources(i)
    uses.add("ctr")
    defs.discard("ctr")            # bcctr never decrements CTR
    if i.op2 & 1:
        defs.add("lr")
    return InsnEffects(frozenset(uses), frozenset(defs),
                       kind=KIND_JUMP_INDIRECT)


@_ppc(pdec.exec_sc)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(may_fault=True, system=True)


@_ppc(pdec.exec_twi)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({_g(i.ra)}), _EMPTY, may_fault=True)


@_ppc(pdec.exec_tw)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({_g(i.ra), _g(i.rb)}), _EMPTY,
                       may_fault=True)


_NAMED_SPRS = {SPR_XER: "xer", SPR_LR: "lr", SPR_CTR: "ctr"}


@_ppc(pdec.exec_mfspr)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    named = _NAMED_SPRS.get(i.imm)
    uses = frozenset({named}) if named else _EMPTY
    return InsnEffects(uses, frozenset({_g(i.rt)}), system=named is None)


@_ppc(pdec.exec_mtspr)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    named = _NAMED_SPRS.get(i.imm)
    defs = frozenset({named}) if named else _EMPTY
    return InsnEffects(frozenset({_g(i.rt)}), defs, system=named is None)


@_ppc(pdec.exec_mfmsr)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(_EMPTY, frozenset({_g(i.rt)}), system=True)


@_ppc(pdec.exec_mtmsr)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset({_g(i.rt)}), _EMPTY, may_fault=True,
                       system=True)


@_ppc(pdec.exec_mfcr)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(frozenset(PPC_CRS), frozenset({_g(i.rt)}))


@_ppc(pdec.exec_rfi)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects(kind=KIND_RET, may_fault=True, system=True)


@_ppc(pdec.exec_nopish)
def _(i: PPCInstr, addr: int) -> InsnEffects:
    return InsnEffects()


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def insn_effects(insn: Union[Instr, PPCInstr], addr: int) -> InsnEffects:
    """Effect summary for a decoded instruction at ``addr``.

    Raises :class:`UnknownInstructionError` when the instruction's
    execute function has no table entry — that means the decoder
    learned a new instruction and this model must be extended.
    """
    if isinstance(insn, Instr):
        handler = _X86_EFFECTS.get(insn.execute)
    else:
        handler = _PPC_EFFECTS.get(insn.execute)
    if handler is None:
        raise UnknownInstructionError(
            f"no effect model for {insn.mnemonic!r} "
            f"({getattr(insn.execute, '__name__', insn.execute)})")
    return handler(insn, addr)


def resources_for(arch: str) -> Tuple[str, ...]:
    """The liveness resource vocabulary of an architecture."""
    if arch == "x86":
        return X86_RESOURCES
    if arch == "ppc":
        return PPC_RESOURCES
    raise ValueError(f"unknown arch {arch!r}")
