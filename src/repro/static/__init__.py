"""Static error-sensitivity analysis of the compiled kernel images.

The dynamic campaigns (:mod:`repro.injection`) *measure* what a bit
flip in kernel text does; this package *predicts* it without executing
anything, from the compiled images alone:

* :mod:`repro.static.cfg` — cross-ISA control-flow graphs over the
  decoded text sections (basic blocks split at branches, calls, and
  returns; intra-function reachability);
* :mod:`repro.static.effects` — per-ISA def/use and side-effect model
  of every decoded instruction (the tables behind the dataflow);
* :mod:`repro.static.liveness` — backward register- and
  condition-flag-liveness over the CFG;
* :mod:`repro.static.corruption` — for every (text address, bit), the
  decode-level consequence of flipping it (illegal opcode, length
  change, opcode/operand substitution, no decode change);
* :mod:`repro.static.sinks` — failure-sink taxonomy: the program
  points where a wrong register value becomes observable behaviour
  (address computations, stores, control transfers, supervisor
  state, trap operands, return values);
* :mod:`repro.static.taint` — interprocedural, flow-sensitive taint
  propagation from a corruption site to the first sink (or a proof
  that the taint dies on every path), with memoized call summaries
  and a static distance-to-sink bound;
* :mod:`repro.static.predictor` — folds reachability + liveness +
  corruption class + taint verdict into a per-bit predicted outcome,
  emitted as a :class:`repro.static.report.StaticSensitivityReport`.

``analysis.validate_static`` compares a report against a dynamic
``CampaignResult``; ``TargetGenerator.code_targets(prune=...)`` uses
the report's provably-dead bit set (``--prune=dead``) or its
taint-proven-masked superset (``--prune=taint``) to skip injections
that cannot manifest.
"""

from repro.static.cfg import BasicBlock, FunctionCFG, KernelCFG, build_cfg
from repro.static.corruption import CorruptionClass, classify_flip
from repro.static.effects import InsnEffects, insn_effects
from repro.static.liveness import LivenessResult, compute_liveness
from repro.static.predictor import (
    PredictedOutcome, analyze_image, analyze_kernel, clear_caches,
    dead_code_bits, taint_masked_bits,
)
from repro.static.report import BitPrediction, StaticSensitivityReport
from repro.static.sinks import SINK_KINDS, sink_triggers
from repro.static.taint import (
    SinkHit, TaintEngine, TaintVerdict, transfer,
)

__all__ = [
    "BasicBlock",
    "BitPrediction",
    "CorruptionClass",
    "FunctionCFG",
    "InsnEffects",
    "KernelCFG",
    "LivenessResult",
    "PredictedOutcome",
    "SINK_KINDS",
    "SinkHit",
    "StaticSensitivityReport",
    "TaintEngine",
    "TaintVerdict",
    "analyze_image",
    "analyze_kernel",
    "build_cfg",
    "classify_flip",
    "clear_caches",
    "compute_liveness",
    "dead_code_bits",
    "insn_effects",
    "sink_triggers",
    "taint_masked_bits",
    "transfer",
]
