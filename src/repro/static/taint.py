"""Interprocedural, flow-sensitive taint propagation over the CFG.

The predictor's hardest cases are pure-dataflow substitutions: the
flip leaves memory, control flow, and supervisor state alone and
merely puts a wrong value in a register.  PR 4 settled those with one
calibrated bet ("predominantly masked").  This module replaces the bet
with dataflow: seed taint with the registers the flip can wrong (old
defs ∪ new defs of the corrupted instruction), push it forward through
per-instruction gen/kill transfer functions to a fixpoint, and
classify each seed by what the taint reaches:

* a **sink** (:mod:`repro.static.sinks`) — the wrong value feeds a
  memory address, a store, a control transfer, supervisor state, a
  trap operand, or the function's return value: predicted to
  manifest, with the propagation path as an evidence chain and the
  instruction count from corruption to sink as a static
  distance-to-sink bound;
* **provable death** — every tainted resource is overwritten with
  clean values on every path before reaching any sink: the
  corruption cannot manifest (modulo the effect model and the ABI
  conventions kcc emits — the same assumptions liveness makes);
* **escape** — the taint survives to a point the analysis cannot
  follow (indirect calls/jumps, returns with taint in live ABI
  state, unknown tail transfers): neither proof is available and the
  verdict falls back to PR 4's calibrated rule.

Lattice and fixpoint
--------------------

The abstract state is the set of tainted resources (registers and
flag units from :mod:`repro.static.effects`), ordered by inclusion;
joins are unions, so the per-block worklist fixpoint is a classic
monotone forward analysis.  The corrupted instruction itself is
special: the flip is persistent in text, so every execution of that
address re-wrongs its destinations — its transfer is
``out = in ∪ seed`` with no kill.

Distances join by minimum, making the reported distance-to-sink a
*lower bound* on the dynamic instruction count from corruption to
sink (loops and longer paths can only take more instructions than the
shortest static path).

Call summaries
--------------

Direct calls apply per-(function, entry resource) summaries: seed one
resource at the callee's entry, run the same intra-function analysis,
and record the sinks hit, the taint still live at returns, whether
anything escaped, and the shortest entry-to-return distance.
Summaries are computed lazily and memoized; recursive cycles and
over-deep chains get a conservative identity summary (taint
preserved, ``escape=True``), which can never produce a false death
proof.  Resources the callee provably overwrites kill taint across
the call; callee-saved state is preserved by the summary's own
dataflow, not by assumption.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.static.cfg import (
    BasicBlock, FunctionCFG, InsnNode, KernelCFG,
)
from repro.static.effects import (
    InsnEffects, KIND_BRANCH, KIND_CALL, KIND_CALL_INDIRECT, KIND_HALT,
    KIND_ILLEGAL, KIND_JUMP, KIND_JUMP_INDIRECT, KIND_RET,
)
from repro.static.liveness import PPC_EXIT_LIVE, X86_EXIT_LIVE
from repro.static.sinks import (
    RETURN_REGS, SINK_OUTPUT, Trigger, sink_triggers,
)

#: taint reached a failure sink: predicted to manifest
VERDICT_SINK = "sink"
#: taint provably died before any sink: cannot manifest
VERDICT_DEAD = "dead"
#: taint left the analysis' view: fall back to the calibrated rule
VERDICT_ESCAPE = "escape"

VERDICTS: Tuple[str, ...] = (VERDICT_SINK, VERDICT_DEAD, VERDICT_ESCAPE)

#: call-summary chains deeper than this get the conservative
#: identity summary (escape) instead of recursing further
MAX_CALL_DEPTH = 12

#: worklist re-walks allowed per block before the fixpoint concedes
#: with an escape (belt and braces: the join is monotone, so this
#: should never fire on real CFGs)
FIXPOINT_BUDGET = 64

#: longest evidence chain kept on a verdict
MAX_EVIDENCE = 32

_EXIT_LIVE = {"x86": X86_EXIT_LIVE, "ppc": PPC_EXIT_LIVE}

_EMPTY: FrozenSet[str] = frozenset()


def transfer(effects: InsnEffects,
             taint: FrozenSet[str]) -> FrozenSet[str]:
    """One instruction's forward taint transfer.

    If the instruction reads any tainted resource its definitions
    become tainted (gen); otherwise its definitions are overwritten
    with clean values and leave the taint set (kill).  Monotone in
    ``taint`` by construction — the hypothesis suite checks this.
    """
    if taint & effects.uses:
        return taint | effects.defs
    return taint - effects.defs


@dataclass(frozen=True)
class SinkHit:
    """One sink reached by the taint, with a static distance bound."""

    kind: str        # one of sinks.SINK_KINDS
    addr: int        # instruction address of the sink
    distance: int    # instructions from the corruption (lower bound)


@dataclass(frozen=True)
class TaintSummary:
    """Effect of one tainted resource entering a function."""

    #: sinks hit inside the callee (distances from its entry)
    sinks: Tuple[SinkHit, ...]
    #: resources still tainted when the callee returns
    out_taint: FrozenSet[str]
    #: taint left the analysis' view somewhere inside
    escape: bool
    #: shortest entry-to-return distance along a tainted path
    #: (``None`` when no return was reached with taint alive)
    ret_distance: Optional[int]


#: what a recursive or over-deep call gets: taint preserved, nothing
#: proven — can never produce a false death proof
def _conservative_summary(resource: str) -> TaintSummary:
    return TaintSummary(sinks=(), out_taint=frozenset({resource}),
                        escape=True, ret_distance=1)


@dataclass(frozen=True)
class TaintVerdict:
    """Outcome of propagating one corruption seed."""

    verdict: str                     # one of VERDICTS
    sinks: Tuple[SinkHit, ...]       # ascending distance
    distance: Optional[int]          # min distance-to-sink bound
    path: Tuple[int, ...]            # evidence chain to the first sink
    escapes: Tuple[str, ...]         # why the analysis lost the taint

    @property
    def reached_sink(self) -> bool:
        return self.verdict == VERDICT_SINK

    @property
    def provably_dead(self) -> bool:
        return self.verdict == VERDICT_DEAD

    @property
    def sink(self) -> Optional[str]:
        """Kind of the nearest sink (``None`` without one)."""
        return self.sinks[0].kind if self.sinks else None


class _Collector:
    """Accumulates sinks, escapes, and return state during one run."""

    def __init__(self) -> None:
        #: (kind, addr) -> (min distance, block start it was found in)
        self.sinks: Dict[Tuple[str, int], Tuple[int, int]] = {}
        self.escapes: Dict[str, None] = {}    # insertion-ordered set
        self.out_taint: Set[str] = set()
        self.ret_distance: Optional[int] = None

    def sink(self, kind: str, addr: int, distance: int,
             block_start: int) -> None:
        key = (kind, addr)
        known = self.sinks.get(key)
        if known is None or distance < known[0]:
            self.sinks[key] = (distance, block_start)

    def escape(self, reason: str) -> None:
        self.escapes[reason] = None

    def ret(self, taint: FrozenSet[str], distance: int) -> None:
        self.out_taint |= taint
        if self.ret_distance is None or distance < self.ret_distance:
            self.ret_distance = distance


class TaintEngine:
    """Taint propagation over one kernel image's CFG.

    Verdicts and call summaries are memoized on the engine; build one
    engine per image (the predictor does) and reuse it for every
    (address, seed) pair.
    """

    def __init__(self, cfg: KernelCFG) -> None:
        self.cfg = cfg
        self.arch = cfg.arch
        self._exit_live = _EXIT_LIVE[cfg.arch]
        self._return_regs = RETURN_REGS[cfg.arch]
        #: function entry address -> function name
        self._entry_fn: Dict[int, str] = {
            f.entry: name for name, f in cfg.functions.items()}
        self._summaries: Dict[Tuple[str, str], TaintSummary] = {}
        self._in_progress: Set[Tuple[str, str]] = set()
        self._verdicts: Dict[Tuple[int, FrozenSet[str]],
                             TaintVerdict] = {}
        self._triggers: Dict[Tuple[str, int],
                             Tuple[Trigger, ...]] = {}

    def clear_cache(self) -> None:
        """Drop memoized verdicts, summaries, and trigger tables."""
        self._summaries.clear()
        self._verdicts.clear()
        self._triggers.clear()

    # -- public entry points ----------------------------------------------

    def propagate(self, addr: int,
                  seed: FrozenSet[str]) -> TaintVerdict:
        """Propagate a corruption seeded at instruction ``addr``.

        ``seed`` is the set of resources the flip can wrong (old defs
        ∪ new defs).  An empty seed yields an escape verdict — a
        substitution that changes semantics without changing any
        tracked definition proves nothing.
        """
        seed = frozenset(seed)
        key = (addr, seed)
        cached = self._verdicts.get(key)
        if cached is not None:
            return cached
        if not seed:
            verdict = TaintVerdict(
                verdict=VERDICT_ESCAPE, sinks=(), distance=None,
                path=(), escapes=("empty-seed",))
            self._verdicts[key] = verdict
            return verdict
        entry = self.cfg.insn_map.get(addr)
        if entry is None:
            raise KeyError(f"address {addr:#x} is not a decoded "
                           f"instruction of the {self.arch} image")
        fname, block_start = entry
        fcfg = self.cfg.functions[fname]
        col = _Collector()
        preds = self._fixpoint(fcfg, col, seed_addr=addr,
                               seed_block=block_start, seed=seed,
                               summary_mode=False, depth=0)
        # a top-level run that reaches a return hands the taint to an
        # unknown caller: live ABI state escaped (``_block_exit``
        # recorded it); nothing further to do here
        verdict = self._assemble(addr, col, preds)
        self._verdicts[key] = verdict
        return verdict

    def summary(self, fname: str, resource: str,
                depth: int = 0) -> TaintSummary:
        """Summary of ``resource`` entering ``fname`` tainted."""
        key = (fname, resource)
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress or depth >= MAX_CALL_DEPTH:
            # recursion (or an over-deep chain): conservative identity
            return _conservative_summary(resource)
        self._in_progress.add(key)
        try:
            fcfg = self.cfg.functions[fname]
            col = _Collector()
            self._fixpoint(fcfg, col, seed_addr=None,
                           seed_block=fcfg.entry,
                           seed=frozenset({resource}),
                           summary_mode=True, depth=depth)
            hits = tuple(sorted(
                (SinkHit(kind, addr, dist)
                 for (kind, addr), (dist, _) in col.sinks.items()),
                key=lambda h: (h.distance, h.kind, h.addr)))
            summary = TaintSummary(
                sinks=hits, out_taint=frozenset(col.out_taint),
                escape=bool(col.escapes),
                ret_distance=col.ret_distance)
            self._summaries[key] = summary
            return summary
        finally:
            self._in_progress.discard(key)

    # -- fixpoint driver ---------------------------------------------------

    def _fixpoint(self, fcfg: FunctionCFG, col: _Collector,
                  seed_addr: Optional[int], seed_block: int,
                  seed: FrozenSet[str], summary_mode: bool,
                  depth: int) -> Dict[int, int]:
        """Worklist fixpoint over ``fcfg``'s blocks.

        Returns the predecessor map (block start -> block start that
        gave it its minimum distance) for evidence reconstruction.
        """
        states: Dict[int, Tuple[FrozenSet[str], int]] = {}
        preds: Dict[int, int] = {}
        walks: Dict[int, int] = {}
        work: Deque[int] = deque()

        def join(succ: int, taint: FrozenSet[str], dist: int,
                 pred: int) -> None:
            known = states.get(succ)
            if known is None:
                states[succ] = (taint, dist)
                preds[succ] = pred
                work.append(succ)
                return
            new_taint = known[0] | taint
            new_dist = min(known[1], dist)
            if new_taint != known[0] or new_dist != known[1]:
                if dist < known[1]:
                    preds[succ] = pred
                states[succ] = (new_taint, new_dist)
                work.append(succ)

        if seed_addr is None:
            # summary mode: the seed is live at the function entry
            states[seed_block] = (seed, 0)
            work.append(seed_block)
        else:
            # corruption mode: start mid-block, at the seed insn
            block = fcfg.blocks[seed_block]
            idx = next(i for i, node in enumerate(block.insns)
                       if node.addr == seed_addr)
            out = self._walk(fcfg, block, idx, _EMPTY, 0, seed_addr,
                             seed, col, summary_mode, depth)
            if out is not None:
                for succ in block.succs:
                    join(succ, out[0], out[1], seed_block)

        while work:
            start = work.popleft()
            walks[start] = walks.get(start, 0) + 1
            if walks[start] > FIXPOINT_BUDGET:
                col.escape("fixpoint-budget")
                continue
            taint_in, dist_in = states[start]
            block = fcfg.blocks[start]
            out = self._walk(fcfg, block, 0, taint_in, dist_in,
                             seed_addr, seed, col, summary_mode,
                             depth)
            if out is None:
                continue
            for succ in block.succs:
                join(succ, out[0], out[1], start)

        # sinks found in the seed's own partial walk have no preds
        # entry; that is fine — the evidence chain is just shorter
        return preds

    # -- one straight-line walk -------------------------------------------

    def _walk(self, fcfg: FunctionCFG, block: BasicBlock, idx: int,
              taint: FrozenSet[str], dist: int,
              seed_addr: Optional[int], seed: FrozenSet[str],
              col: _Collector, summary_mode: bool,
              depth: int) -> Optional[Tuple[FrozenSet[str], int]]:
        """Push taint through ``block.insns[idx:]``; returns the
        (taint, distance) handed to intra-function successors, or
        ``None`` when nothing survives to them."""
        for node in block.insns[idx:]:
            if node.addr == seed_addr:
                # the flip is persistent in text: every execution of
                # this address re-wrongs the seed resources, and the
                # (substituted) instruction is pure dataflow, so no
                # sink checks and no kill apply here
                taint = taint | seed
                dist += 1
                continue
            eff = node.effects
            if taint:
                for kind, res in self._sink_triggers(fcfg.name, node):
                    if taint & res:
                        col.sink(kind, node.addr, dist, block.start)
            if eff.kind == KIND_CALL:
                taint = transfer(eff, taint)
                if taint:
                    taint, dist = self._apply_call(
                        eff.target, taint, dist, col, block.start,
                        depth)
                    dist -= 1          # the shared += 1 below
            elif eff.kind == KIND_CALL_INDIRECT:
                if taint:
                    col.escape("indirect-call")
                taint = transfer(eff, taint)
            else:
                taint = transfer(eff, taint)
            dist += 1
        if not taint:
            return None
        return self._block_exit(fcfg, block, taint, dist, col,
                                summary_mode, depth)

    def _block_exit(self, fcfg: FunctionCFG, block: BasicBlock,
                    taint: FrozenSet[str], dist: int, col: _Collector,
                    summary_mode: bool, depth: int
                    ) -> Optional[Tuple[FrozenSet[str], int]]:
        """Apply the terminator's *exit* semantics (where does taint
        go when control leaves this block — or the function)."""
        eff = block.terminator.effects
        kind = eff.kind
        if kind == KIND_RET:
            self._leave_function(block.terminator.addr, taint, dist,
                                 col, summary_mode, block.start)
            return None
        if kind in (KIND_ILLEGAL, KIND_HALT):
            # execution stops with wrong values still in registers;
            # whether the harness observes them is not decidable here
            col.escape(f"end-{kind}")
            return None
        if kind == KIND_JUMP_INDIRECT:
            col.escape("indirect-jump")
            return None
        if kind == KIND_JUMP and not block.succs:
            return self._tail_transfer(fcfg, block, eff, taint, dist,
                                       col, summary_mode, depth)
        if kind == KIND_BRANCH and eff.target is not None \
                and eff.target not in fcfg.blocks:
            # branch into another function's body: not followable
            col.escape("branch-out")
        if not block.succs:
            # falls off the function end (e.g. a noreturn call)
            col.escape("fall-off")
            return None
        return taint, dist

    def _tail_transfer(self, fcfg: FunctionCFG, block: BasicBlock,
                       eff: InsnEffects, taint: FrozenSet[str],
                       dist: int, col: _Collector, summary_mode: bool,
                       depth: int
                       ) -> Optional[Tuple[FrozenSet[str], int]]:
        """A jump out of the function: follow it as a tail call when
        the target is a known function entry, else concede."""
        callee = self._entry_fn.get(
            eff.target if eff.target is not None else -1)
        if callee is None or depth >= MAX_CALL_DEPTH:
            col.escape("tail-jump")
            return None
        out, out_dist = self._apply_call(eff.target, taint, dist, col,
                                         block.start, depth)
        if out:
            # the tail callee returns straight to *our* caller
            self._leave_function(block.terminator.addr, out, out_dist,
                                 col, summary_mode, block.start)
        return None

    def _leave_function(self, addr: int, taint: FrozenSet[str],
                        dist: int, col: _Collector,
                        summary_mode: bool, block_start: int) -> None:
        """Taint alive at a function return."""
        if summary_mode:
            # the caller's own walk continues the propagation
            col.ret(taint, dist)
            return
        # top level: the caller is unknown, so apply the ABI contract
        # the compiler emits — return registers carry the result (a
        # workload-output sink), other exit-live state escapes, and
        # everything else is clobber-by-convention (dead on arrival)
        if taint & self._return_regs:
            col.sink(SINK_OUTPUT, addr, dist, block_start)
        if (taint & self._exit_live) - self._return_regs:
            col.escape("live-at-return")

    def _apply_call(self, target: Optional[int],
                    taint: FrozenSet[str], dist: int, col: _Collector,
                    block_start: int, depth: int
                    ) -> Tuple[FrozenSet[str], int]:
        """Apply per-resource callee summaries at a direct call."""
        callee = self._entry_fn.get(target if target is not None
                                    else -1)
        if callee is None or depth >= MAX_CALL_DEPTH:
            col.escape("call-unknown" if callee is None
                       else "call-depth")
            return taint, dist + 1     # conservative identity
        out: Set[str] = set()
        ret_distance: Optional[int] = None
        for resource in sorted(taint):
            summary = self.summary(callee, resource, depth + 1)
            for hit in summary.sinks:
                col.sink(hit.kind, hit.addr,
                         dist + 1 + hit.distance, block_start)
            if summary.escape:
                col.escape(f"callee:{callee}")
            out |= summary.out_taint
            if summary.ret_distance is not None and \
                    (ret_distance is None
                     or summary.ret_distance < ret_distance):
                ret_distance = summary.ret_distance
        through = 1 + (ret_distance if ret_distance is not None else 1)
        return frozenset(out), dist + through

    # -- verdict assembly --------------------------------------------------

    def _sink_triggers(self, fname: str,
                       node: InsnNode) -> Tuple[Trigger, ...]:
        key = (fname, node.addr)
        cached = self._triggers.get(key)
        if cached is None:
            cached = sink_triggers(node, self.arch)
            self._triggers[key] = cached
        return cached

    def _assemble(self, seed_addr: int, col: _Collector,
                  preds: Dict[int, int]) -> TaintVerdict:
        hits = sorted(
            ((dist, kind, addr, bstart)
             for (kind, addr), (dist, bstart) in col.sinks.items()))
        sinks = tuple(SinkHit(kind, addr, dist)
                      for dist, kind, addr, _ in hits)
        escapes = tuple(col.escapes)
        if sinks:
            first = hits[0]
            path = self._evidence(seed_addr, first[2], first[3], preds)
            return TaintVerdict(verdict=VERDICT_SINK, sinks=sinks,
                                distance=first[0], path=path,
                                escapes=escapes)
        if escapes:
            return TaintVerdict(verdict=VERDICT_ESCAPE, sinks=(),
                                distance=None, path=(),
                                escapes=escapes)
        return TaintVerdict(verdict=VERDICT_DEAD, sinks=(),
                            distance=None, path=(), escapes=())

    def _evidence(self, seed_addr: int, sink_addr: int,
                  sink_block: int, preds: Dict[int, int]
                  ) -> Tuple[int, ...]:
        """Reconstruct the block chain from the seed to the first
        sink: seed address, the block starts along the shortest
        discovered route, then the sink address."""
        chain: List[int] = []
        seen: Set[int] = set()
        start: Optional[int] = sink_block
        while start is not None and start not in seen \
                and len(chain) < MAX_EVIDENCE:
            seen.add(start)
            chain.append(start)
            start = preds.get(start)
        chain.reverse()
        path = [seed_addr] + chain + [sink_addr]
        # collapse duplicates from the seed/sink living in chain blocks
        deduped: List[int] = []
        for addr in path:
            if not deduped or deduped[-1] != addr:
                deduped.append(addr)
        return tuple(deduped[:MAX_EVIDENCE])
