"""Failure-sink taxonomy for the taint engine.

A *sink* is a program point where a wrong register value stops being
"just a wrong value" and becomes observable behaviour — the static
counterpart of the dynamic crash causes and result corruptions the
campaigns measure:

* ``mem-addr`` — a tainted register feeds a memory *address*
  computation (wild load / wild store; the paper's dominant
  bad-paging / bad-area crash causes);
* ``store-data`` — a tainted register is *stored*: the wrong value
  escapes the register file into memory, where the workload (or a
  later load) can observe it;
* ``control`` — a tainted resource decides a control transfer: a
  condition input, an indirect target, a return address;
* ``supervisor`` — a tainted resource reaches supervisor state
  (``mtmsr``, segment loads, ``iret``/``rfi`` frames);
* ``trap-operand`` — a tainted operand of an instruction that can
  fault on its own (divide error, ``tw``/``twi`` traps): the wrong
  value can raise an exception the clean run never sees;
* ``workload-output`` — taint is live in the ABI return-value
  registers at a function return: the wrong value is the function's
  *result*, headed for the workload's output.

For each instruction :func:`sink_triggers` lists the (kind, resource
set) pairs such that taint intersecting the resource set at that
instruction constitutes a hit.  The split between address and data
resources is best-effort from the decoded operand fields — both label
a manifestation, so imprecision there moves a hit between *kinds*,
never in or out of sink-hood.
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

from repro.ppc.insn import PPCInstr
from repro.static.cfg import InsnNode
from repro.static.effects import (
    EFLAGS, KIND_BRANCH, KIND_CALL, KIND_CALL_INDIRECT, KIND_JUMP,
    KIND_JUMP_INDIRECT, KIND_RET, InsnEffects,
)
from repro.x86.insn import Instr
from repro.x86.registers import GPR_NAMES

SINK_MEM_ADDR = "mem-addr"
SINK_STORE_DATA = "store-data"
SINK_CONTROL = "control"
SINK_SUPERVISOR = "supervisor"
SINK_TRAP = "trap-operand"
SINK_OUTPUT = "workload-output"

SINK_KINDS: Tuple[str, ...] = (
    SINK_MEM_ADDR, SINK_STORE_DATA, SINK_CONTROL, SINK_SUPERVISOR,
    SINK_TRAP, SINK_OUTPUT,
)

#: ABI return-value registers: taint here at a ``ret`` is a
#: ``workload-output`` sink (the caller consumes the wrong result)
RETURN_REGS = {
    "x86": frozenset({"eax", "edx"}),
    "ppc": frozenset({"r3", "r4"}),
}

#: control-transfer kinds whose inputs decide where execution goes
_CONTROL_KINDS = frozenset({
    KIND_JUMP, KIND_BRANCH, KIND_JUMP_INDIRECT, KIND_CALL,
    KIND_CALL_INDIRECT, KIND_RET,
})

#: x86 implicit-pointer registers (stack pushes/pops, string ops)
_X86_IMPLICIT_PTRS = frozenset({"esp", "ebp", "esi", "edi"})

Trigger = Tuple[str, FrozenSet[str]]


def _address_uses(node: InsnNode) -> FrozenSet[str]:
    """Registers feeding the memory-address computation, best effort
    from the decoded operand fields; generic fallback for synthetic
    instructions (property tests): every non-flag use."""
    insn, eff = node.insn, node.effects
    if isinstance(insn, Instr):
        regs = set()
        if insn.rm_reg < 0:            # explicit [base + index*scale]
            if insn.base >= 0:
                regs.add(GPR_NAMES[insn.base])
            if insn.index >= 0:
                regs.add(GPR_NAMES[insn.index])
        # implicit pointers: push/pop/call/ret via esp, string ops
        # via esi/edi, leave/enter via ebp
        regs |= _X86_IMPLICIT_PTRS & eff.uses
        return frozenset(regs) & eff.uses
    if isinstance(insn, PPCInstr):
        if eff.writes_mem:
            return eff.uses - _ppc_store_data(insn, eff)
        return eff.uses                # loads: every use feeds the EA
    return frozenset(r for r in eff.uses if r != EFLAGS)


def _ppc_store_data(insn: PPCInstr, eff: InsnEffects) -> FrozenSet[str]:
    """The registers a PPC store writes to memory (rt, or rt..r31 for
    ``stmw``)."""
    if insn.mnemonic == "stmw":
        return frozenset(f"r{n}" for n in range(insn.rt, 32)) & eff.uses
    return frozenset({f"r{insn.rt}"}) & eff.uses


def sink_triggers(node: InsnNode, arch: str) -> Tuple[Trigger, ...]:
    """The (sink kind, trigger resources) pairs of one instruction.

    Taint intersecting a trigger set when execution reaches this
    instruction is a sink hit of that kind.  The ``workload-output``
    sink is not listed here — it depends on taint *surviving* to a
    return, which only the engine knows.
    """
    eff = node.effects
    triggers: List[Trigger] = []
    if eff.reads_mem or eff.writes_mem:
        addr = _address_uses(node)
        if addr:
            triggers.append((SINK_MEM_ADDR, addr))
        if eff.writes_mem:
            if isinstance(node.insn, PPCInstr):
                data = _ppc_store_data(node.insn, eff)
            else:
                data = eff.uses - addr - frozenset({EFLAGS})
            if data:
                triggers.append((SINK_STORE_DATA, data))
    if eff.system and eff.uses:
        triggers.append((SINK_SUPERVISOR, eff.uses))
    elif eff.may_fault and not (eff.reads_mem or eff.writes_mem) \
            and eff.uses:
        # a trap/divide source: wrong operands can raise an exception
        # the clean run never sees (memory faults are mem sinks)
        triggers.append((SINK_TRAP, eff.uses))
    if eff.kind in _CONTROL_KINDS and eff.uses:
        triggers.append((SINK_CONTROL, eff.uses))
    return tuple(triggers)
