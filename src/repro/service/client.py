"""A thin blocking client for the campaign service.

Stdlib-only (``http.client``); one connection per request, matching
the daemon's one-request-per-connection policy.  The ``repro submit``
/ ``repro jobs`` / ``repro cancel`` CLI subcommands wrap this class,
and so do the service tests and benchmarks.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Dict, Iterator, List, Optional
from urllib.parse import urlencode, urlsplit


class ServiceError(Exception):
    """A non-2xx response (or a dead daemon)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Blocking JSON client for one campaign-service daemon."""

    def __init__(self, url: str = "http://127.0.0.1:8321",
                 timeout: float = 120.0):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8321
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _connection(self) -> HTTPConnection:
        return HTTPConnection(self.host, self.port,
                              timeout=self.timeout)

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None):
        connection = self._connection()
        try:
            body = headers = None
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers = {"Content-Type": "application/json"}
            connection.request(method, path, body=body,
                               headers=headers or {})
            response = connection.getresponse()
            data = response.read()
            parsed = json.loads(data) if data else {}
            if response.status >= 400:
                message = (parsed.get("error", data.decode("utf-8",
                                                           "replace"))
                           if isinstance(parsed, dict) else str(parsed))
                raise ServiceError(response.status, message)
            return parsed
        finally:
            connection.close()

    # -- service API -------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def wait_ready(self, timeout: float = 30.0) -> dict:
        """Poll until the daemon answers (startup helper)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except (OSError, ServiceError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)

    def submit(self, config: dict, tenant: str = "default",
               priority: int = 0, workers: int = 1,
               job_type: str = "campaign") -> dict:
        """Submit; returns the response payload (``job`` or ``jobs``,
        plus ``deduped``)."""
        return self._request("POST", "/v1/jobs", {
            "type": job_type, "tenant": tenant, "priority": priority,
            "workers": workers, "config": config})

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(self, tenant: Optional[str] = None,
             state: Optional[str] = None) -> List[dict]:
        query = {key: value for key, value in
                 (("tenant", tenant), ("state", state))
                 if value is not None}
        path = "/v1/jobs" + (f"?{urlencode(query)}" if query else "")
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST",
                             f"/v1/jobs/{job_id}/cancel")["job"]

    def stream(self, job_id: str) -> Iterator[dict]:
        """Yield progress events (NDJSON) until the job reaches a
        terminal state or the daemon goes away."""
        connection = self._connection()
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/events")
            response = connection.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    message = json.loads(data).get("error", "")
                except ValueError:
                    message = data.decode("utf-8", "replace")
                raise ServiceError(response.status, message)
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue               # keep-alive
                yield json.loads(line)
        finally:
            connection.close()

    def wait(self, job_id: str, timeout: float = 600.0,
             on_event=None) -> dict:
        """Block until *job_id* is terminal; returns the final view.

        Streams events (reconnecting if the stream drops) and falls
        back to polling, so it survives a daemon restart mid-job.
        """
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["state"] in ("done", "failed", "cancelled"):
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {view['state']} after "
                    f"{timeout:.0f}s")
            try:
                for event in self.stream(job_id):
                    if on_event is not None:
                        on_event(event)
                    if (event.get("event") == "state"
                            and event.get("state") in
                            ("done", "failed", "cancelled")):
                        break
                    if time.monotonic() >= deadline:
                        break
            except (OSError, ServiceError):
                time.sleep(0.2)        # daemon restarting: poll again

    # -- read endpoints ----------------------------------------------------

    def campaigns(self) -> List[dict]:
        return self._request("GET", "/v1/campaigns")["campaigns"]

    def campaign(self, campaign_id: str) -> dict:
        return self._request("GET", f"/v1/campaigns/{campaign_id}")

    def results(self, campaign_id: str,
                limit: Optional[int] = None) -> List[dict]:
        path = f"/v1/campaigns/{campaign_id}/results"
        if limit is not None:
            path += f"?limit={limit}"
        connection = self._connection()
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            data = response.read()
            if response.status >= 400:
                try:
                    message = json.loads(data).get("error", "")
                except ValueError:
                    message = data.decode("utf-8", "replace")
                raise ServiceError(response.status, message)
            return [json.loads(line)
                    for line in data.decode("utf-8").splitlines()
                    if line.strip()]
        finally:
            connection.close()

    def summary(self, campaign_id: str) -> dict:
        return self._request("GET",
                             f"/v1/campaigns/{campaign_id}/summary")

    def sensitivity(self, campaign_id: str) -> str:
        connection = self._connection()
        try:
            connection.request(
                "GET", f"/v1/campaigns/{campaign_id}/sensitivity")
            response = connection.getresponse()
            data = response.read().decode("utf-8")
            if response.status >= 400:
                try:
                    message = json.loads(data).get("error", data)
                except ValueError:
                    message = data
                raise ServiceError(response.status, message)
            return data
        finally:
            connection.close()


def digest_of_jobs(views: List[dict]) -> Dict[str, Optional[str]]:
    """``{job_id: digest}`` convenience for scripts and CI smoke."""
    return {view["id"]: view.get("digest") for view in views}
