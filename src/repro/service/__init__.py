"""Campaign-as-a-service: a long-lived orchestration daemon.

The paper's result tables come from thousands of independent
experiments per (architecture, target-class) cell — work shaped for a
service, not a one-shot CLI.  This package layers an asyncio HTTP/JSON
daemon over the existing engine:

* **protocol** (:mod:`repro.service.protocol`) — submission payload
  validation against :class:`CampaignConfig`/:class:`StudyConfig` and
  the JSON job views;
* **jobs** (:mod:`repro.service.jobs`) — the job model and the
  multi-tenant FIFO+priority queue with round-robin fairness;
* **scheduler** (:mod:`repro.service.scheduler`) — worker-slot
  accounting, job execution on the PR 1 sharded engine through the
  PR 2 store (so a killed daemon resumes bit-identically and duplicate
  submissions dedupe by manifest identity), cancellation, and the
  durable job index;
* **http** (:mod:`repro.service.http`) — a minimal stdlib-only
  HTTP/1.1 layer on asyncio streams (no framework);
* **daemon** (:mod:`repro.service.daemon`) — routes, streaming
  (NDJSON/SSE) progress, read endpoints, graceful shutdown;
* **client** (:mod:`repro.service.client`) — a thin blocking client
  (``repro submit``/``jobs``/``cancel`` wrap it).

Start one with ``python -m repro serve --store DIR --workers N``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import CampaignService
from repro.service.jobs import Job, JobState
from repro.service.protocol import ValidationError
from repro.service.scheduler import CampaignScheduler

__all__ = [
    "CampaignService", "CampaignScheduler", "ServiceClient",
    "ServiceError", "Job", "JobState", "ValidationError",
]
