"""The campaign service daemon: routes, streaming, shutdown.

API (all JSON unless noted)::

    GET  /v1/health                      liveness + slot/queue stats
    POST /v1/jobs                        submit a campaign (or study)
    GET  /v1/jobs[?tenant=&state=]       list jobs
    GET  /v1/jobs/{id}                   one job's status
    POST /v1/jobs/{id}/cancel            cancel (idempotent)
    GET  /v1/jobs/{id}/events            progress stream: NDJSON, or
                                         SSE with Accept: text/event-stream
    GET  /v1/campaigns                   stored campaigns (manifest+done)
    GET  /v1/campaigns/{cid}/results     results as NDJSON (?limit=)
    GET  /v1/campaigns/{cid}/summary     outcome/cause/latency summary
    GET  /v1/campaigns/{cid}/sensitivity text sensitivity table (code)

Read endpoints replay the journal with ``truncate=False``, so they see
a consistent prefix of a campaign that is *still being appended to* —
many concurrent readers, one writer, no locks.

Graceful shutdown (SIGINT/SIGTERM under ``repro serve``) drains: new
submissions get 503, running jobs stop at their next journaled batch
boundary and are requeued in the durable job index, so the restarted
daemon resumes them bit-identically.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import AsyncIterator, List, Optional, Tuple

from repro.service.http import (
    HttpError, HttpServer, Request, Response, Router, json_response,
    text_response,
)
from repro.service.jobs import JobState
from repro.service.protocol import (
    ValidationError, campaign_config_from_payload,
    study_configs_from_payload,
)
from repro.service.scheduler import CampaignScheduler, SchedulerDraining
from repro.store import (
    CampaignStore, JournalCorruption, ManifestError, StoreError,
)
from repro.store import journal as journal_mod
from repro.store.codec import result_to_dict, results_digest
from repro.store.manifest import JOURNAL_NAME, CampaignManifest

#: how long an event stream waits between queue polls before emitting
#: a keep-alive comment (SSE) / blank line (NDJSON)
STREAM_KEEPALIVE = 15.0


class CampaignService:
    """The daemon: an HTTP facade over a :class:`CampaignScheduler`."""

    def __init__(self, store, workers: int = 2,
                 host: str = "127.0.0.1", port: int = 8321):
        self.store = (store if isinstance(store, CampaignStore)
                      else CampaignStore(store))
        self.scheduler = CampaignScheduler(self.store, workers=workers)
        self.host = host
        self.port = port
        self._http = HttpServer(self._router())

    def _router(self) -> Router:
        router = Router()
        router.add("GET", "/v1/health", self.handle_health)
        router.add("POST", "/v1/jobs", self.handle_submit)
        router.add("GET", "/v1/jobs", self.handle_jobs)
        router.add("GET", "/v1/jobs/{id}", self.handle_job)
        router.add("POST", "/v1/jobs/{id}/cancel", self.handle_cancel)
        router.add("GET", "/v1/jobs/{id}/events", self.handle_events)
        router.add("GET", "/v1/campaigns", self.handle_campaigns)
        router.add("GET", "/v1/campaigns/{cid}", self.handle_campaign)
        router.add("GET", "/v1/campaigns/{cid}/results",
                   self.handle_results)
        router.add("GET", "/v1/campaigns/{cid}/summary",
                   self.handle_summary)
        router.add("GET", "/v1/campaigns/{cid}/sensitivity",
                   self.handle_sensitivity)
        return router

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> int:
        """Start scheduler + listener; returns the bound port."""
        await self.scheduler.start()
        self.port = await self._http.start(self.host, self.port)
        return self.port

    async def stop(self) -> None:
        """Graceful drain (see module docstring)."""
        self.scheduler.draining = True     # 503 new submissions now
        await self.scheduler.shutdown()
        await self._http.close()

    # -- job endpoints -----------------------------------------------------

    async def handle_health(self, request: Request) -> Response:
        stats = self.scheduler.stats()
        stats["status"] = "draining" if stats["draining"] else "ok"
        stats["store"] = str(self.store.root)
        return json_response(stats)

    async def handle_submit(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "submission must be a JSON object")
        tenant = payload.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise HttpError(400, "tenant must be a non-empty string")
        priority = payload.get("priority", 0)
        workers = payload.get("workers", 1)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise HttpError(400, "priority must be an integer")
        if (not isinstance(workers, int) or isinstance(workers, bool)
                or workers < 1):
            raise HttpError(400, "workers must be a positive integer")
        job_type = payload.get("type", "campaign")
        try:
            if job_type == "campaign":
                configs = [campaign_config_from_payload(
                    payload.get("config"))]
            elif job_type == "study":
                configs = study_configs_from_payload(
                    payload.get("config", {}))
            else:
                raise HttpError(400, f"unknown job type {job_type!r}")
        except ValidationError as exc:
            raise HttpError(400, str(exc))
        views, deduped = [], 0
        try:
            for config in configs:
                job, was_dup = self.scheduler.submit(
                    config, tenant=tenant, priority=priority,
                    workers=workers)
                views.append(job.view())
                deduped += int(was_dup)
        except SchedulerDraining as exc:
            raise HttpError(503, str(exc))
        if job_type == "campaign":
            return json_response(
                {"job": views[0], "deduped": bool(deduped)},
                status=200 if deduped else 201)
        return json_response({"jobs": views, "deduped": deduped},
                             status=201)

    async def handle_jobs(self, request: Request) -> Response:
        return json_response({"jobs": self.scheduler.job_views(
            tenant=request.query.get("tenant"),
            state=request.query.get("state"))})

    def _job(self, request: Request):
        try:
            return self.scheduler.jobs[request.params["id"]]
        except KeyError:
            raise HttpError(404, f"no job {request.params['id']}")

    async def handle_job(self, request: Request) -> Response:
        return json_response({"job": self._job(request).view()})

    async def handle_cancel(self, request: Request) -> Response:
        job = self._job(request)
        job = self.scheduler.cancel(job.id)
        return json_response({"job": job.view()})

    async def handle_events(self, request: Request) -> Response:
        job = self._job(request)
        sse = request.wants_sse()
        history, live = self.scheduler.subscribe(job.id)

        def encode(event: dict) -> bytes:
            line = json.dumps(event, sort_keys=True)
            if sse:
                return f"data: {line}\n\n".encode("utf-8")
            return (line + "\n").encode("utf-8")

        async def stream() -> AsyncIterator[bytes]:
            try:
                for event in history:
                    yield encode(event)
                while live is not None:
                    try:
                        event = await asyncio.wait_for(
                            live.get(), timeout=STREAM_KEEPALIVE)
                    except asyncio.TimeoutError:
                        yield b": keep-alive\n\n" if sse else b"\n"
                        continue
                    if event is None:
                        break
                    yield encode(event)
            finally:
                if live is not None:
                    self.scheduler.unsubscribe(job.id, live)

        content_type = ("text/event-stream" if sse
                        else "application/x-ndjson")
        return Response(stream=stream(), content_type=content_type)

    # -- store read endpoints ----------------------------------------------

    def _journaled(self, campaign_id: str
                   ) -> List[Tuple[int, object]]:
        """A consistent prefix of one campaign's journal, readable
        while the single writer is still appending."""
        directory = self.store.campaign_dir(campaign_id)
        if not (directory / "manifest.json").exists():
            raise HttpError(404, f"no campaign {campaign_id}")
        try:
            report = journal_mod.replay(directory / JOURNAL_NAME,
                                        truncate=False)
        except JournalCorruption as exc:
            raise HttpError(500, str(exc))
        return sorted(report.records, key=lambda pair: pair[0])

    async def handle_campaigns(self, request: Request) -> Response:
        def build():
            rows = []
            for campaign_id in self.store.campaign_ids():
                try:
                    manifest = CampaignManifest.load(
                        self.store.campaign_dir(campaign_id))
                except ManifestError as exc:
                    rows.append({"campaign_id": campaign_id,
                                 "error": str(exc)})
                    continue
                rows.append({
                    "campaign_id": campaign_id,
                    "arch": manifest.arch, "kind": manifest.kind,
                    "count": manifest.count,
                    "done": len(self._journaled(campaign_id)),
                    "code_version": manifest.code_version,
                })
            return rows
        rows = await asyncio.get_running_loop().run_in_executor(
            None, build)
        return json_response({"campaigns": rows})

    async def handle_campaign(self, request: Request) -> Response:
        campaign_id = request.params["cid"]
        directory = self.store.campaign_dir(campaign_id)
        try:
            manifest = CampaignManifest.load(directory)
        except ManifestError as exc:
            raise HttpError(404, str(exc))
        records = await asyncio.get_running_loop().run_in_executor(
            None, self._journaled, campaign_id)
        return json_response({
            "campaign_id": campaign_id,
            "manifest": manifest.to_dict(),
            "done": len(records),
            "complete": len(records) >= manifest.count,
        })

    async def handle_results(self, request: Request) -> Response:
        campaign_id = request.params["cid"]
        limit = request.query.get("limit")
        try:
            cap = int(limit) if limit is not None else None
        except ValueError:
            raise HttpError(400, f"bad limit {limit!r}")
        records = await asyncio.get_running_loop().run_in_executor(
            None, self._journaled, campaign_id)
        if cap is not None:
            records = records[:cap]

        async def stream() -> AsyncIterator[bytes]:
            for index, result in records:
                line = json.dumps(
                    {"index": index,
                     "result": result_to_dict(result)},
                    sort_keys=True)
                yield (line + "\n").encode("utf-8")

        return Response(stream=stream(),
                        content_type="application/x-ndjson")

    async def handle_summary(self, request: Request) -> Response:
        campaign_id = request.params["cid"]

        def build():
            from repro.analysis.latency import (
                BUCKET_LABELS, latency_percentages,
            )
            from repro.analysis.tables import build_row, render_table
            directory = self.store.campaign_dir(campaign_id)
            try:
                manifest = CampaignManifest.load(directory)
            except ManifestError as exc:
                raise HttpError(404, str(exc))
            records = self._journaled(campaign_id)
            results = [result for _index, result in records]
            outcomes: dict = {}
            causes: dict = {}
            for result in results:
                key = result.outcome.value
                outcomes[key] = outcomes.get(key, 0) + 1
                if result.cause is not None:
                    cause = result.cause.value
                    causes[cause] = causes.get(cause, 0) + 1
            from repro.injection.outcomes import CampaignKind
            row = build_row(CampaignKind(manifest.kind), results)
            percentages = latency_percentages(results)
            return {
                "campaign_id": campaign_id,
                "arch": manifest.arch, "kind": manifest.kind,
                "count": manifest.count, "done": len(results),
                "outcomes": outcomes, "causes": causes,
                "latency_pct": {label: percentages[label]
                                for label in BUCKET_LABELS},
                "digest": results_digest(results),
                "table": render_table(
                    [row], "Pentium 4" if manifest.arch == "x86"
                    else "PPC G4"),
            }

        payload = await asyncio.get_running_loop().run_in_executor(
            None, build)
        return json_response(payload)

    async def handle_sensitivity(self, request: Request) -> Response:
        campaign_id = request.params["cid"]

        def build():
            from repro.analysis.sensitivity import render_sensitivity
            from repro.injection.campaign import CampaignContext
            from repro.service.scheduler import _context_lock
            directory = self.store.campaign_dir(campaign_id)
            try:
                manifest = CampaignManifest.load(directory)
            except ManifestError as exc:
                raise HttpError(404, str(exc))
            if manifest.kind != "code":
                raise HttpError(
                    400, f"sensitivity tables need a code campaign, "
                    f"{campaign_id} is {manifest.kind!r}")
            results = [result for _index, result
                       in self._journaled(campaign_id)]
            with _context_lock:
                context = CampaignContext.get(
                    manifest.arch, manifest.seed, manifest.ops)
            return render_sensitivity(
                results, context.base_machine.image,
                f"{manifest.arch} code campaign")

        text = await asyncio.get_running_loop().run_in_executor(
            None, build)
        return text_response(text)


def run_daemon(store, workers: int = 2, host: str = "127.0.0.1",
               port: int = 8321) -> int:
    """``repro serve`` entry point: serve until SIGINT/SIGTERM, then
    drain gracefully (running shards finish, job index checkpointed,
    new submissions 503'd during the drain)."""
    try:
        CampaignStore(store)           # fail before binding the port
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    async def main() -> int:
        service = CampaignService(store, workers=workers, host=host,
                                  port=port)
        bound = await service.start()
        print(f"repro service on http://{host}:{bound} "
              f"(store {service.store.root}, "
              f"{service.scheduler.total_slots} worker slots)",
              file=sys.stderr, flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("draining: running shards finish, new submissions get "
              "503...", file=sys.stderr, flush=True)
        await service.stop()
        return 0

    return asyncio.run(main())
