"""Submission payload validation and JSON views.

Everything that crosses the service's wire boundary goes through this
module: a submitted campaign payload is validated field-by-field into
a real :class:`CampaignConfig` (so a bad submission is a 400 with a
message, never a worker-side traceback), a study payload expands into
the eight per-(arch, kind) campaign configs via :class:`StudyConfig`,
and jobs serialize to plain-JSON views for status and list endpoints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.checkpoint.ladder import DEFAULT_CHECKPOINTS
from repro.core.config import StudyConfig
from repro.faults import DEFAULT_MODEL, available_models, model_applies
from repro.injection.campaign import PRUNE_POLICIES, CampaignConfig
from repro.injection.outcomes import CampaignKind

ARCHES = ("x86", "ppc")
KINDS = tuple(kind.value for kind in CampaignKind)
EXEC_MODES = ("block", "step")

#: fields a campaign submission may carry (everything optional except
#: arch/kind/count); unknown keys are rejected so a typo'd field name
#: fails loudly instead of silently running with the default
CAMPAIGN_FIELDS = ("arch", "kind", "count", "seed", "ops",
                   "dump_loss_probability", "prune", "exec_mode",
                   "checkpoints", "fault_model")

STUDY_FIELDS = ("seed", "scale", "ops", "dump_loss_probability",
                "min_campaign", "prune", "exec_mode", "checkpoints",
                "fault_model")


class ValidationError(Exception):
    """A submission payload failed validation (maps to HTTP 400)."""


def _require(payload: dict, field: str):
    if field not in payload:
        raise ValidationError(f"missing required field {field!r}")
    return payload[field]


def _int_field(payload: dict, field: str, default: int,
               minimum: Optional[int] = None) -> int:
    value = payload.get(field, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{field} must be an integer, "
                              f"got {value!r}")
    if minimum is not None and value < minimum:
        raise ValidationError(f"{field} must be >= {minimum}, "
                              f"got {value}")
    return value


def _float_field(payload: dict, field: str, default: float,
                 low: float, high: float) -> float:
    value = payload.get(field, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{field} must be a number, got {value!r}")
    if not (low <= value <= high):
        raise ValidationError(f"{field} must be in [{low}, {high}], "
                              f"got {value}")
    return float(value)


def _choice_field(payload: dict, field: str, default: str,
                  choices: Tuple[str, ...]) -> str:
    value = payload.get(field, default)
    if value not in choices:
        raise ValidationError(f"{field} must be one of {choices}, "
                              f"got {value!r}")
    return value


def _reject_unknown(payload: dict, allowed: Tuple[str, ...],
                    what: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ValidationError(f"unknown {what} field(s): "
                              f"{', '.join(unknown)}")


def campaign_config_from_payload(payload) -> CampaignConfig:
    """Validate one campaign submission into a ``CampaignConfig``."""
    if not isinstance(payload, dict):
        raise ValidationError("campaign config must be a JSON object")
    _reject_unknown(payload, CAMPAIGN_FIELDS, "campaign config")
    arch = _require(payload, "arch")
    if arch not in ARCHES:
        raise ValidationError(f"arch must be one of {ARCHES}, "
                              f"got {arch!r}")
    kind_name = _require(payload, "kind")
    if kind_name not in KINDS:
        raise ValidationError(f"kind must be one of {KINDS}, "
                              f"got {kind_name!r}")
    _require(payload, "count")
    try:
        return CampaignConfig(
            arch=arch, kind=CampaignKind(kind_name),
            count=_int_field(payload, "count", 0, minimum=1),
            seed=_int_field(payload, "seed", 0),
            ops=_int_field(payload, "ops", 48, minimum=1),
            dump_loss_probability=_float_field(
                payload, "dump_loss_probability", 0.08, 0.0, 1.0),
            prune=_choice_field(payload, "prune", "none",
                                PRUNE_POLICIES),
            exec_mode=_choice_field(payload, "exec_mode", "block",
                                    EXEC_MODES),
            checkpoints=_int_field(payload, "checkpoints",
                                   DEFAULT_CHECKPOINTS, minimum=0),
            fault_model=_choice_field(payload, "fault_model",
                                      DEFAULT_MODEL,
                                      available_models()))
    except ValueError as exc:      # e.g. prune on a non-code campaign
        raise ValidationError(str(exc))


def study_configs_from_payload(payload) -> List[CampaignConfig]:
    """Expand a study submission into its eight campaign configs.

    Mirrors ``Study._campaign_config``: campaign sizes come from
    ``StudyConfig.campaign_count`` (paper sizes x scale, floored at
    ``min_campaign``) and pruning applies to code campaigns only.
    """
    if not isinstance(payload, dict):
        raise ValidationError("study config must be a JSON object")
    _reject_unknown(payload, STUDY_FIELDS, "study config")
    study = StudyConfig(
        seed=_int_field(payload, "seed", 0),
        scale=_float_field(payload, "scale", 0.02, 0.0, 1.0),
        ops=_int_field(payload, "ops", 48, minimum=1),
        dump_loss_probability=_float_field(
            payload, "dump_loss_probability", 0.08, 0.0, 1.0),
        min_campaign=_int_field(payload, "min_campaign", 40, minimum=1),
        prune=_choice_field(payload, "prune", "none", PRUNE_POLICIES),
        exec_mode=_choice_field(payload, "exec_mode", "block",
                                EXEC_MODES),
        checkpoints=_int_field(payload, "checkpoints",
                               DEFAULT_CHECKPOINTS, minimum=0),
        fault_model=_choice_field(payload, "fault_model",
                                  DEFAULT_MODEL, available_models()))
    configs = []
    for arch in ARCHES:
        for kind in CampaignKind:
            configs.append(CampaignConfig(
                arch=arch, kind=kind,
                count=study.campaign_count(arch, kind),
                seed=study.seed, ops=study.ops,
                dump_loss_probability=study.dump_loss_probability,
                prune=study.prune if kind is CampaignKind.CODE
                else "none",
                exec_mode=study.exec_mode,
                checkpoints=study.checkpoints,
                # mirror Study._campaign_config: kinds the model does
                # not apply to fall back to the single-bit default
                fault_model=study.fault_model
                if model_applies(study.fault_model, kind.value)
                else DEFAULT_MODEL))
    return configs


def config_to_payload(config: CampaignConfig) -> Dict[str, object]:
    """The JSON view of a campaign config (round-trips through
    :func:`campaign_config_from_payload`)."""
    return {
        "arch": config.arch, "kind": config.kind.value,
        "count": config.count, "seed": config.seed, "ops": config.ops,
        "dump_loss_probability": config.dump_loss_probability,
        "prune": config.prune, "exec_mode": config.exec_mode,
        "checkpoints": config.checkpoints,
        "fault_model": config.fault_model,
    }
