"""A minimal HTTP/1.1 layer on ``asyncio`` streams — no framework.

Just enough protocol for the campaign service: request-line + header
parsing with size caps, JSON bodies, path-parameter routing
(``/v1/jobs/{id}/events``), fixed-length responses, and streamed
responses (NDJSON / SSE) that end by closing the connection.  Every
connection serves exactly one request — simple, robust under many
concurrent clients, and exactly what ``http.client`` handles natively.
"""

from __future__ import annotations

import asyncio
import json
import logging
from dataclasses import dataclass, field
from typing import (
    AsyncIterator, Awaitable, Callable, Dict, List, Optional, Tuple,
)
from urllib.parse import parse_qsl, unquote, urlsplit

logger = logging.getLogger(__name__)

MAX_HEADERS = 100
MAX_BODY = 4 * 1024 * 1024

REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HttpError(Exception):
    """Maps to an HTTP error response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]            # keys lower-cased
    body: bytes = b""
    #: path parameters bound by the router ({id} -> value)
    params: Dict[str, str] = field(default_factory=dict)

    def json(self):
        if not self.body:
            raise HttpError(400, "expected a JSON body")
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise HttpError(400, f"bad JSON body: {exc}")

    def wants_sse(self) -> bool:
        return "text/event-stream" in self.headers.get("accept", "")


@dataclass
class Response:
    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    #: when set, ``body`` is ignored and chunks from this async
    #: iterator are written as they come; the stream ends by closing
    #: the connection (no Content-Length)
    stream: Optional[AsyncIterator[bytes]] = None


def json_response(payload, status: int = 200) -> Response:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return Response(status=status, body=body)


def text_response(text: str, status: int = 200) -> Response:
    return Response(status=status, body=text.encode("utf-8"),
                    content_type="text/plain; charset=utf-8")


def error_response(status: int, message: str) -> Response:
    return json_response({"error": message, "status": status},
                         status=status)


Handler = Callable[[Request], Awaitable[Response]]


class Router:
    """Method + path-pattern dispatch with ``{param}`` segments."""

    def __init__(self):
        self._routes: List[Tuple[str, List[str], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        self._routes.append((method.upper(),
                             pattern.strip("/").split("/"), handler))

    def resolve(self, method: str, path: str
                ) -> Tuple[Handler, Dict[str, str]]:
        segments = [unquote(part)
                    for part in path.strip("/").split("/")]
        path_matched = False
        for route_method, pattern, handler in self._routes:
            params = _match(pattern, segments)
            if params is None:
                continue
            path_matched = True
            if route_method == method.upper():
                return handler, params
        if path_matched:
            raise HttpError(405, f"method {method} not allowed "
                            f"on {path}")
        raise HttpError(404, f"no route for {path}")


def _match(pattern: List[str], segments: List[str]
           ) -> Optional[Dict[str, str]]:
    if len(pattern) != len(segments):
        return None
    params: Dict[str, str] = {}
    for expected, actual in zip(pattern, segments):
        if expected.startswith("{") and expected.endswith("}"):
            params[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return params


async def read_request(reader: asyncio.StreamReader
                       ) -> Optional[Request]:
    """Parse one request; None on a closed/empty connection."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, "malformed request line")
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _sep, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many headers")
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise HttpError(400, "bad Content-Length")
        if size > MAX_BODY:
            raise HttpError(413, f"body over {MAX_BODY} bytes")
        body = await reader.readexactly(size)
    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query))
    return Request(method=method.upper(), path=parts.path,
                   query=query, headers=headers, body=body)


async def write_response(writer: asyncio.StreamWriter,
                         response: Response) -> None:
    head = [f"HTTP/1.1 {response.status} "
            f"{REASONS.get(response.status, 'Unknown')}",
            f"Content-Type: {response.content_type}",
            "Connection: close"]
    if response.stream is None:
        head.append(f"Content-Length: {len(response.body)}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(response.body)
        await writer.drain()
        return
    head.append("Cache-Control: no-cache")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    await writer.drain()
    async for chunk in response.stream:
        writer.write(chunk)
        await writer.drain()


class HttpServer:
    """One-request-per-connection asyncio HTTP server."""

    def __init__(self, router: Router):
        self.router = router
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self, host: str, port: int) -> int:
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port)
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                handler, params = self.router.resolve(request.method,
                                                      request.path)
                request.params = params
                response = await handler(request)
            except HttpError as exc:
                response = error_response(exc.status, exc.message)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as exc:   # noqa: BLE001 — 500, not a crash
                logger.exception("handler error")
                response = error_response(
                    500, f"{type(exc).__name__}: {exc}")
            await write_response(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
