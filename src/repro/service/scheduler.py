"""Worker-slot scheduling, job execution, and the durable job index.

The scheduler is the bridge between the asyncio daemon and the
blocking campaign engine:

* every admitted job runs in a thread of a bounded pool, calling
  ``Campaign.run(store=..., resume=True, workers=job.workers,
  progress_callback=...)`` — the PR 1 sharded path journaling through
  the PR 2 store, so results are durable the instant they exist;
* **slots**: the daemon owns ``workers`` slots total; a job occupies
  ``job.workers`` of them while running, and the fair queue only
  releases a job when its request fits (cancellation frees slots at
  the next batch boundary);
* **cancellation** is cooperative: the progress callback — which runs
  after the batch is journaled — observes ``cancel_requested`` and
  raises, so no completed work is ever lost and a cancelled job can
  later be resubmitted to resume;
* **durability**: every job state transition appends to
  ``<store>/service/jobs.jsonl``; on startup the index is replayed
  and jobs that were queued or running when the daemon died are
  requeued — their campaign journals make the rerun a bit-identical
  resume;
* **dedupe**: a submission whose config maps to the same stored
  campaign identity and count as a live (or completed) job returns
  that job instead of queueing a duplicate writer.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.injection.campaign import (
    Campaign, CampaignConfig, CampaignContext,
)
from repro.service.jobs import FairQueue, Job, JobState, campaign_identity
from repro.service.protocol import (
    campaign_config_from_payload, config_to_payload,
)
from repro.store.codec import results_digest
from repro.store.store import CampaignStore

logger = logging.getLogger(__name__)

JOB_INDEX_DIR = "service"
JOB_INDEX_NAME = "jobs.jsonl"


class JobCancelled(Exception):
    """Raised inside the worker thread when a cancel lands."""


class JobInterrupted(Exception):
    """Raised inside the worker thread on graceful daemon shutdown."""


class SchedulerDraining(Exception):
    """Submission refused: the daemon is shutting down (HTTP 503)."""


#: serializes CampaignContext construction across job threads — two
#: jobs sharing (arch, seed, ops) then build the multi-second context
#: once instead of racing to build it twice
_context_lock = threading.Lock()


def _job_record(job: Job) -> dict:
    return {
        "id": job.id, "tenant": job.tenant, "priority": job.priority,
        "workers": job.workers, "seq": job.seq,
        "config": config_to_payload(job.config),
        "campaign_id": job.campaign_id, "state": job.state.value,
        "done": job.done, "total": job.total,
        "counts": dict(job.counts), "digest": job.digest,
        "error": job.error, "submitted_at": job.submitted_at,
        "started_at": job.started_at, "finished_at": job.finished_at,
    }


def _job_from_record(record: dict) -> Job:
    job = Job(
        id=record["id"], tenant=record["tenant"],
        priority=record["priority"], workers=record["workers"],
        config=campaign_config_from_payload(record["config"]),
        campaign_id=record["campaign_id"], seq=record["seq"],
        state=JobState(record["state"]))
    job.done = record.get("done", 0)
    job.total = record.get("total", 0)
    job.counts = dict(record.get("counts", {}))
    job.digest = record.get("digest")
    job.error = record.get("error")
    job.submitted_at = record.get("submitted_at", 0.0)
    job.started_at = record.get("started_at")
    job.finished_at = record.get("finished_at")
    return job


class CampaignScheduler:
    """Admits, runs, streams, cancels, and persists campaign jobs."""

    def __init__(self, store: CampaignStore, workers: int = 2):
        self.store = store
        self.total_slots = max(1, workers)
        self.free_slots = self.total_slots
        self.queue = FairQueue()
        self.jobs: Dict[str, Job] = {}
        self.draining = False
        self._interrupt = False
        self._busy: Set[str] = set()          # campaign ids running
        self._tasks: Dict[str, asyncio.Task] = {}
        self._subscribers: Dict[str, List[asyncio.Queue]] = {}
        self._history: Dict[str, List[dict]] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=self.total_slots,
            thread_name_prefix="repro-job")
        self._wake: Optional[asyncio.Event] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._index_path = (store.root / JOB_INDEX_DIR / JOB_INDEX_NAME)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Recover the job index and start the dispatch loop."""
        self._wake = asyncio.Event()
        self._recover()
        self._pump_task = asyncio.create_task(self._pump())
        self._wake.set()

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, stop jobs at the next
        journaled batch boundary, keep them queued for the restart."""
        self.draining = True
        self._interrupt = True
        if self._pump_task is not None:
            self._pump_task.cancel()
        running = list(self._tasks.values())
        if running:
            await asyncio.gather(*running, return_exceptions=True)
        self._executor.shutdown(wait=True)

    def _recover(self) -> None:
        """Replay the job index; requeue interrupted jobs."""
        latest: Dict[str, dict] = {}
        try:
            lines = self._index_path.read_text(
                encoding="utf-8").splitlines()
        except FileNotFoundError:
            lines = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                latest[record["id"]] = record
            except (ValueError, KeyError):
                continue               # torn tail of a killed daemon
        max_seq = -1
        for record in latest.values():
            try:
                job = _job_from_record(record)
            except Exception:          # noqa: BLE001 — skip bad record
                continue
            max_seq = max(max_seq, job.seq)
            self.jobs[job.id] = job
            self._history[job.id] = []
            if not job.state.terminal:
                # queued or mid-run when the daemon died: requeue;
                # the campaign journal turns the rerun into a resume
                job.state = JobState.QUEUED
                job.started_at = None
                self.queue.push(job)
                self._journal(job)
        for _ in range(max_seq + 1):   # seq continues past recovery
            self.queue.next_seq()
        requeued = len(self.queue)
        if requeued:
            logger.info("recovered %d job(s) from %s; %d requeued",
                        len(self.jobs), self._index_path, requeued)

    def _journal(self, job: Job) -> None:
        self._index_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self._index_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(_job_record(job),
                                    sort_keys=True) + "\n")

    # -- submission --------------------------------------------------------

    def submit(self, config: CampaignConfig, tenant: str = "default",
               priority: int = 0, workers: int = 1
               ) -> Tuple[Job, bool]:
        """Queue one campaign job; returns ``(job, deduped)``.

        A config mapping to the same stored campaign identity and
        count as an existing non-failed job dedupes onto it: two
        clients asking for the same experiments share one writer and
        one result stream.
        """
        if self.draining:
            raise SchedulerDraining("service is draining; resubmit "
                                    "after restart")
        cid = campaign_identity(config)
        for job in self.jobs.values():
            if (job.campaign_id == cid
                    and job.config.count == config.count
                    and job.state not in (JobState.FAILED,
                                          JobState.CANCELLED)):
                return job, True
        seq = self.queue.next_seq()
        job = Job(
            id=f"job-{seq:06d}", tenant=tenant, priority=priority,
            workers=max(1, min(workers, self.total_slots)),
            config=config, campaign_id=cid, seq=seq)
        self.jobs[job.id] = job
        self._history[job.id] = []
        self.queue.push(job)
        self._journal(job)
        self._emit(job, {"event": "state", "state": job.state.value})
        if self._wake is not None:
            self._wake.set()
        return job, False

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job immediately, a running one at the next
        journaled batch boundary.  Idempotent on terminal jobs."""
        job = self.jobs[job_id]
        if job.state.terminal:
            return job
        if job.state is JobState.QUEUED and self.queue.remove(job):
            self._finish(job, JobState.CANCELLED)
        else:
            job.cancel_requested = True
        return job

    # -- dispatch ----------------------------------------------------------

    async def _pump(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self.draining:
                continue
            while True:
                job = self.queue.pop_next(self.free_slots, self._busy)
                if job is None:
                    break
                self._start_job(job)

    def _start_job(self, job: Job) -> None:
        self.free_slots -= job.workers
        self._busy.add(job.campaign_id)
        job.state = JobState.RUNNING
        job.started_at = time.time()
        self._journal(job)
        self._emit(job, {"event": "state", "state": job.state.value})
        self._tasks[job.id] = asyncio.create_task(self._run_job(job))

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()

        def progress_cb(done: int, total: int, batch) -> None:
            # runs in the worker thread, *after* the batch is
            # journaled — raising aborts the run losing nothing
            if job.cancel_requested:
                raise JobCancelled(job.id)
            if self._interrupt:
                raise JobInterrupted(job.id)
            tally: Dict[str, int] = {}
            for _index, result in batch:
                key = result.outcome.value
                tally[key] = tally.get(key, 0) + 1
            loop.call_soon_threadsafe(self._on_progress, job, done,
                                      total, tally)

        def run_sync():
            with _context_lock:
                context = CampaignContext.get(
                    job.config.arch, job.config.seed, job.config.ops)
            campaign = Campaign(job.config, context)
            return campaign.run(store=self.store, resume=True,
                                workers=job.workers,
                                progress_callback=progress_cb)

        try:
            result = await loop.run_in_executor(self._executor,
                                                run_sync)
        except JobCancelled:
            self._finish(job, JobState.CANCELLED)
        except JobInterrupted:
            # graceful shutdown: back to the queue, journaled, so the
            # restarted daemon resumes it
            job.state = JobState.QUEUED
            job.started_at = None
            self._journal(job)
            self._emit(job, {"event": "state",
                             "state": job.state.value})
        except Exception as exc:       # noqa: BLE001 — job-level fault
            logger.exception("job %s failed", job.id)
            self._finish(job, JobState.FAILED,
                         error=f"{type(exc).__name__}: {exc}")
        else:
            job.done = job.total = len(result.results)
            counts: Dict[str, int] = {}
            for item in result.results:
                key = item.outcome.value
                counts[key] = counts.get(key, 0) + 1
            job.counts = counts
            self._finish(job, JobState.DONE,
                         digest=results_digest(result.results))
        finally:
            self.free_slots += job.workers
            self._busy.discard(job.campaign_id)
            self._tasks.pop(job.id, None)
            if self._wake is not None:
                self._wake.set()

    def _finish(self, job: Job, state: JobState,
                digest: Optional[str] = None,
                error: Optional[str] = None) -> None:
        job.state = state
        job.digest = digest if digest is not None else job.digest
        job.error = error
        job.finished_at = time.time()
        self._journal(job)
        event = {"event": "state", "state": state.value,
                 "done": job.done, "total": job.total,
                 "counts": dict(job.counts)}
        if job.digest:
            event["digest"] = job.digest
        if error:
            event["error"] = error
        self._emit(job, event, terminal=True)

    # -- progress fan-out --------------------------------------------------

    def _on_progress(self, job: Job, done: int, total: int,
                     tally: Dict[str, int]) -> None:
        job.done, job.total = done, total
        for key, bump in tally.items():
            job.counts[key] = job.counts.get(key, 0) + bump
        self._emit(job, {"event": "progress", "done": done,
                         "total": total, "counts": dict(job.counts)})

    def _emit(self, job: Job, event: dict,
              terminal: bool = False) -> None:
        event = dict(event, job=job.id, ts=time.time())
        self._history.setdefault(job.id, []).append(event)
        for queue in list(self._subscribers.get(job.id, ())):
            queue.put_nowait(event)
            if terminal:
                queue.put_nowait(None)

    def subscribe(self, job_id: str
                  ) -> Tuple[List[dict], Optional[asyncio.Queue]]:
        """History so far plus a live queue (None when terminal —
        the history already ends with the terminal event)."""
        job = self.jobs[job_id]
        history = list(self._history.get(job_id, ()))
        if job.state.terminal:
            return history, None
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.setdefault(job_id, []).append(queue)
        return history, queue

    def unsubscribe(self, job_id: str, queue: asyncio.Queue) -> None:
        listeners = self._subscribers.get(job_id, [])
        if queue in listeners:
            listeners.remove(queue)

    # -- views -------------------------------------------------------------

    def job_views(self, tenant: Optional[str] = None,
                  state: Optional[str] = None) -> List[dict]:
        jobs = sorted(self.jobs.values(), key=lambda job: job.seq)
        if tenant is not None:
            jobs = [job for job in jobs if job.tenant == tenant]
        if state is not None:
            jobs = [job for job in jobs if job.state.value == state]
        return [job.view() for job in jobs]

    def stats(self) -> dict:
        return {
            "total_slots": self.total_slots,
            "free_slots": self.free_slots,
            "queued": len(self.queue),
            "running": len(self._tasks),
            "jobs": len(self.jobs),
            "draining": self.draining,
        }
