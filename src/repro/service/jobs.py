"""The job model and the multi-tenant FIFO+priority fair queue.

Pure data structures — no asyncio, no I/O — so queue semantics are
unit-testable in isolation.  The scheduler owns the asyncio side.

Queue semantics
---------------

* Within one tenant, jobs run highest **priority** first and FIFO
  within a priority (submission order breaks ties).
* Across tenants, dispatch is **round-robin**: each time a tenant's
  job is picked, that tenant rotates to the back, so a tenant with a
  thousand queued jobs cannot starve a tenant with one.
* A job is only *admissible* when its worker-slot request fits the
  free slots **and** no other job is currently running against the
  same stored campaign (the journal has a single writer).  The queue
  skips inadmissible heads rather than blocking the line behind them.
"""

from __future__ import annotations

import enum
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.injection.campaign import CampaignConfig
from repro.store.manifest import CampaignManifest


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED,
                        JobState.CANCELLED)


@dataclass
class Job:
    """One submitted campaign and its full lifecycle."""

    id: str
    tenant: str
    priority: int
    workers: int
    config: CampaignConfig
    campaign_id: str                  # manifest identity (dedupe key)
    seq: int                          # global submission order
    state: JobState = JobState.QUEUED
    #: set by the cancel endpoint; the progress callback observes it
    #: at the next batch boundary and aborts the run
    cancel_requested: bool = False
    done: int = 0
    total: int = 0
    #: running outcome tally, updated per merged batch
    counts: Dict[str, int] = field(default_factory=dict)
    #: sha256 over the full canonical result stream, set on completion
    digest: Optional[str] = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def view(self) -> dict:
        """The JSON status view served by ``GET /v1/jobs/<id>``."""
        from repro.service.protocol import config_to_payload
        return {
            "id": self.id, "tenant": self.tenant,
            "priority": self.priority, "workers": self.workers,
            "state": self.state.value,
            "cancel_requested": self.cancel_requested,
            "campaign_id": self.campaign_id,
            "config": config_to_payload(self.config),
            "done": self.done, "total": self.total,
            "counts": dict(self.counts),
            "digest": self.digest, "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


def campaign_identity(config: CampaignConfig) -> str:
    """The stored-campaign identity a config maps to (dedupe key)."""
    return CampaignManifest.from_config(config).campaign_id


class FairQueue:
    """Multi-tenant FIFO+priority queue with round-robin dispatch."""

    def __init__(self):
        #: per-tenant pending jobs, kept sorted by (-priority, seq)
        self._pending: Dict[str, List[Job]] = {}
        #: round-robin order; served tenants rotate to the back
        self._rotation: List[str] = []
        self._seq = itertools.count()

    def next_seq(self) -> int:
        return next(self._seq)

    def __len__(self) -> int:
        return sum(len(jobs) for jobs in self._pending.values())

    def pending(self, tenant: Optional[str] = None) -> List[Job]:
        if tenant is not None:
            return list(self._pending.get(tenant, ()))
        return [job for tenant_name in self._rotation
                for job in self._pending[tenant_name]]

    def push(self, job: Job) -> None:
        queue = self._pending.get(job.tenant)
        if queue is None:
            queue = self._pending[job.tenant] = []
            self._rotation.append(job.tenant)
        queue.append(job)
        queue.sort(key=lambda item: (-item.priority, item.seq))

    def remove(self, job: Job) -> bool:
        """Drop a queued job (cancellation); True when it was queued."""
        queue = self._pending.get(job.tenant)
        if queue is None or job not in queue:
            return False
        queue.remove(job)
        self._drop_if_empty(job.tenant)
        return True

    def _drop_if_empty(self, tenant: str) -> None:
        if not self._pending.get(tenant):
            self._pending.pop(tenant, None)
            self._rotation.remove(tenant)

    def pop_next(self, free_slots: int,
                 busy_campaigns: Set[str]) -> Optional[Job]:
        """Pick the next admissible job, or None when nothing fits.

        Tenants are scanned in rotation order; within a tenant, jobs
        in priority-then-FIFO order.  Inadmissible jobs (too many
        slots requested, or their stored campaign already has a
        running writer) are skipped, not blocking.  The serving
        tenant rotates to the back.
        """
        for position, tenant in enumerate(self._rotation):
            for job in self._pending[tenant]:
                if job.workers > free_slots:
                    continue
                if job.campaign_id in busy_campaigns:
                    continue
                self._pending[tenant].remove(job)
                self._rotation.pop(position)
                if self._pending[tenant]:
                    self._rotation.append(tenant)
                else:
                    del self._pending[tenant]
                return job
        return None
